#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace clktune::lp {
namespace {

TEST(SimplexTest, SingleVariableBoundsOnly) {
  Model m;
  m.add_variable(-3.0, 8.0, 1.0, "x");
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::optimal);
  EXPECT_NEAR(s.x[0], -3.0, 1e-9);
  EXPECT_NEAR(s.objective, -3.0, 1e-9);
}

TEST(SimplexTest, MaximizationViaNegatedCost) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0  -> (4, 0), obj 12.
  Model m;
  const int x = m.add_variable(0.0, kInf, -3.0, "x");
  const int y = m.add_variable(0.0, kInf, -2.0, "y");
  m.add_row(Sense::less_equal, {{x, 1.0}, {y, 1.0}}, 4.0);
  m.add_row(Sense::less_equal, {{x, 1.0}, {y, 3.0}}, 6.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::optimal);
  EXPECT_NEAR(s.objective, -12.0, 1e-9);
  EXPECT_NEAR(s.x[0], 4.0, 1e-9);
  EXPECT_NEAR(s.x[1], 0.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + y s.t. x + y = 2, 0 <= x,y <= 5.
  Model m;
  const int x = m.add_variable(0.0, 5.0, 1.0);
  const int y = m.add_variable(0.0, 5.0, 1.0);
  m.add_row(Sense::equal, {{x, 1.0}, {y, 1.0}}, 2.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
  EXPECT_NEAR(s.x[0] + s.x[1], 2.0, 1e-9);
}

TEST(SimplexTest, GreaterEqualConstraint) {
  // min 2x + y s.t. x + y >= 3, x,y in [0, 10] -> (0, 3), obj 3.
  Model m;
  const int x = m.add_variable(0.0, 10.0, 2.0);
  const int y = m.add_variable(0.0, 10.0, 1.0);
  m.add_row(Sense::greater_equal, {{x, 1.0}, {y, 1.0}}, 3.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::optimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_NEAR(s.x[1], 3.0, 1e-9);
}

TEST(SimplexTest, NegativeVariableRange) {
  // min |shift| style: min xp + xn with x = xp - xn, x - y <= -3, y in [0,1].
  Model m;
  const int xp = m.add_variable(0.0, 10.0, 1.0);
  const int xn = m.add_variable(0.0, 10.0, 1.0);
  const int y = m.add_variable(0.0, 1.0, 0.0);
  m.add_row(Sense::less_equal, {{xp, 1.0}, {xn, -1.0}, {y, -1.0}}, -3.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::optimal);
  // Best: y = 1, x = -2 -> xn = 2.
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(SimplexTest, InfeasibleSystem) {
  Model m;
  const int x = m.add_variable(0.0, 1.0, 1.0);
  m.add_row(Sense::greater_equal, {{x, 1.0}}, 2.0);
  const Solution s = solve(m);
  EXPECT_EQ(s.status, Status::infeasible);
}

TEST(SimplexTest, InfeasibleContradictoryRows) {
  Model m;
  const int x = m.add_variable(-kInf, kInf, 0.0);
  const int y = m.add_variable(-kInf, kInf, 0.0);
  m.add_row(Sense::less_equal, {{x, 1.0}, {y, -1.0}}, -1.0);   // x - y <= -1
  m.add_row(Sense::less_equal, {{y, 1.0}, {x, -1.0}}, -1.0);   // y - x <= -1
  const Solution s = solve(m);
  EXPECT_EQ(s.status, Status::infeasible);
}

TEST(SimplexTest, UnboundedProblem) {
  Model m;
  const int x = m.add_variable(-kInf, kInf, 1.0);
  m.add_row(Sense::less_equal, {{x, 1.0}}, 5.0);
  const Solution s = solve(m);
  EXPECT_EQ(s.status, Status::unbounded);
}

TEST(SimplexTest, FixedVariables) {
  Model m;
  const int x = m.add_variable(2.0, 2.0, 5.0);
  const int y = m.add_variable(0.0, 10.0, 1.0);
  m.add_row(Sense::greater_equal, {{x, 1.0}, {y, 1.0}}, 6.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::optimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 4.0, 1e-9);
}

TEST(SimplexTest, FreeVariableReachesNegativeOptimum) {
  // min x s.t. x >= -7 expressed as a row (variable itself unbounded).
  Model m;
  const int x = m.add_variable(-kInf, kInf, 1.0);
  m.add_row(Sense::greater_equal, {{x, 1.0}}, -7.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::optimal);
  EXPECT_NEAR(s.x[0], -7.0, 1e-9);
}

TEST(SimplexTest, DuplicateCoefficientsAreSummed) {
  // Row written as x + x <= 4 should behave as 2x <= 4.
  Model m;
  const int x = m.add_variable(0.0, kInf, -1.0);
  m.add_row(Sense::less_equal, {{x, 1.0}, {x, 1.0}}, 4.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::optimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
}

TEST(SimplexTest, DegenerateVertexTerminates) {
  // Multiple redundant constraints through the same vertex.
  Model m;
  const int x = m.add_variable(0.0, kInf, -1.0);
  const int y = m.add_variable(0.0, kInf, -1.0);
  m.add_row(Sense::less_equal, {{x, 1.0}, {y, 1.0}}, 2.0);
  m.add_row(Sense::less_equal, {{x, 1.0}, {y, 1.0}}, 2.0);
  m.add_row(Sense::less_equal, {{x, 2.0}, {y, 2.0}}, 4.0);
  m.add_row(Sense::less_equal, {{x, 1.0}}, 2.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::optimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(SimplexTest, RedundantEqualityRows) {
  Model m;
  const int x = m.add_variable(0.0, 10.0, 1.0);
  const int y = m.add_variable(0.0, 10.0, 2.0);
  m.add_row(Sense::equal, {{x, 1.0}, {y, 1.0}}, 4.0);
  m.add_row(Sense::equal, {{x, 2.0}, {y, 2.0}}, 8.0);  // same plane
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::optimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-9);  // x=4, y=0
}

TEST(SimplexTest, DifferenceConstraintChain) {
  // Shortest-path-like chain: x0 = 0 (fixed), x_{i+1} <= x_i + w.
  Model m;
  const int k = 6;
  std::vector<int> xs;
  xs.push_back(m.add_variable(0.0, 0.0, 0.0));
  for (int i = 1; i < k; ++i)
    xs.push_back(m.add_variable(-kInf, kInf, i == k - 1 ? -1.0 : 0.0));
  for (int i = 0; i + 1 < k; ++i)
    m.add_row(Sense::less_equal, {{xs[i + 1], 1.0}, {xs[i], -1.0}}, 2.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::optimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(xs[k - 1])], 2.0 * (k - 1), 1e-9);
}

// ---------------------------------------------------------------------------
// Randomized cross-check: small LPs validated against a dense grid search.
// The simplex objective must (a) be feasible and (b) not be worse than the
// best grid point by more than a grid-resolution tolerance.
// ---------------------------------------------------------------------------

class RandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpTest, BeatsGridSearch) {
  util::SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  Model m;
  const int nv = 2 + static_cast<int>(rng.next_below(2));  // 2..3 vars
  std::vector<double> lo(static_cast<std::size_t>(nv)),
      hi(static_cast<std::size_t>(nv));
  for (int j = 0; j < nv; ++j) {
    const auto js = static_cast<std::size_t>(j);
    lo[js] = std::floor(rng.next_double(-4.0, 0.0));
    hi[js] = std::ceil(rng.next_double(0.5, 4.0));
    m.add_variable(lo[js], hi[js], rng.next_double(-2.0, 2.0));
  }
  const int rows = 1 + static_cast<int>(rng.next_below(4));
  for (int r = 0; r < rows; ++r) {
    std::vector<Coefficient> coeffs;
    for (int j = 0; j < nv; ++j)
      coeffs.push_back({j, std::round(rng.next_double(-2.0, 2.0))});
    const Sense sense = rng.next_below(2) == 0 ? Sense::less_equal
                                               : Sense::greater_equal;
    m.add_row(sense, coeffs, rng.next_double(-3.0, 5.0));
  }

  const Solution s = solve(m);
  // Grid search at resolution `steps` per axis.
  const int steps = 60;
  double best = std::numeric_limits<double>::infinity();
  std::vector<double> pt(static_cast<std::size_t>(nv));
  std::vector<int> idx(static_cast<std::size_t>(nv), 0);
  bool done = false;
  while (!done) {
    for (int j = 0; j < nv; ++j) {
      const auto js = static_cast<std::size_t>(j);
      pt[js] = lo[js] + (hi[js] - lo[js]) * idx[js] / steps;
    }
    if (m.infeasibility(pt) <= 1e-9) best = std::min(best, m.objective_value(pt));
    int j = 0;
    while (j < nv && ++idx[static_cast<std::size_t>(j)] > steps) {
      idx[static_cast<std::size_t>(j)] = 0;
      ++j;
    }
    done = j == nv;
  }

  if (!std::isfinite(best)) {
    // Grid found nothing; solver may legitimately find a feasible sliver,
    // but it must never claim infeasibility when the grid finds a point.
    return;
  }
  ASSERT_EQ(s.status, Status::optimal)
      << "grid found a feasible point but solver says otherwise";
  EXPECT_LE(m.infeasibility(s.x), 1e-6);
  EXPECT_LE(s.objective, best + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLpTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace clktune::lp
