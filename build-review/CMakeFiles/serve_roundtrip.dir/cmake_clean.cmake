file(REMOVE_RECURSE
  "CMakeFiles/serve_roundtrip.dir/examples/serve_roundtrip.cpp.o"
  "CMakeFiles/serve_roundtrip.dir/examples/serve_roundtrip.cpp.o.d"
  "serve_roundtrip"
  "serve_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
