file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_concentration.dir/bench/fig5_concentration.cpp.o"
  "CMakeFiles/bench_fig5_concentration.dir/bench/fig5_concentration.cpp.o.d"
  "bench_fig5_concentration"
  "bench_fig5_concentration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
