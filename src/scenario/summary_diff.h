// Cell-by-cell comparison of two campaign summaries (or single-scenario
// result artifacts): same sweep run against different code or config, did
// any cell regress?  Backs `clktune report --diff`, whose nonzero exit
// turns a regression into a CI failure.
//
// Comparison is kind-aware (see scenario::ScenarioKind):
//   * yield — a cell regresses when its tuned yield drops by more than the
//     tolerance;
//   * criticality — the top-K arc sets are compared as probability maps
//     (an arc ranked in one artifact but not the other counts as 0); any
//     per-arc after-tuning criticality differing by more than the
//     tolerance is a regression;
//   * binning — per-bin tuned yields are compared rung by rung; a cell
//     whose ladder differs is incomparable (a structural mismatch, like a
//     cell-set mismatch), and a bin yield dropping beyond the tolerance is
//     a regression.
// A cell whose kind differs between the artifacts is incomparable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace clktune::scenario {

/// One cell present in both summaries with the same kind, matched by
/// scenario name.  `yield_a` / `yield_b` hold the kind's comparison scalar:
/// tuned yield (yield), the highest after-tuning arc criticality
/// (criticality) or the lowest per-bin tuned yield (binning).
struct CellDiff {
  std::string name;
  std::string kind;  ///< "yield" / "criticality" / "binning"
  double yield_a = 0.0;  ///< comparison scalar in the baseline artifact
  double yield_b = 0.0;  ///< comparison scalar in the candidate artifact
  bool regression = false;

  double delta() const { return yield_b - yield_a; }
};

struct SummaryDiff {
  std::vector<CellDiff> cells;            ///< in baseline order
  std::vector<std::string> only_in_a;     ///< cells the candidate lost
  std::vector<std::string> only_in_b;     ///< cells the candidate grew
  /// Cells present in both but not comparable: mismatched kinds, or
  /// binning ladders that differ.
  std::vector<std::string> incomparable;
  std::uint64_t regressions = 0;

  /// The two artifacts are not the same sweep (cell sets differ, or cells
  /// changed kind / ladder).
  bool structural_mismatch() const {
    return !only_in_a.empty() || !only_in_b.empty() || !incomparable.empty();
  }
};

/// Diffs two artifacts parsed from `clktune run` / `clktune sweep` output.
/// `tolerance` is in probability (not percent).  Throws util::JsonError on
/// malformed input or duplicate cell names.
SummaryDiff diff_summaries(const util::Json& a, const util::Json& b,
                           double tolerance);

}  // namespace clktune::scenario
