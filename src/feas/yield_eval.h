// Yield evaluation of a tuning plan: a chip (Monte-Carlo sample) passes when
// a feasible assignment of discrete buffer delays exists that meets all
// setup and hold constraints at clock period T.
//
// With a fixed plan this is a pure feasibility question over difference
// constraints (buffered flip-flops are variables, everything else is pinned
// to zero, windows become bounds against a reference node), solved per
// sample by Bellman-Ford on grid-floored constants.  Evaluation uses its own
// seed so reported yields are out-of-sample relative to the insertion run.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "feas/tuning_plan.h"
#include "mc/sampler.h"
#include "ssta/seq_graph.h"
#include "util/stats.h"

namespace clktune::feas {

struct YieldResult {
  double yield = 0.0;
  double ci95 = 0.0;  ///< 95 % confidence half-width
  std::uint64_t passing = 0;
  std::uint64_t samples = 0;
};

class YieldEvaluator {
 public:
  YieldEvaluator(const ssta::SeqGraph& graph, TuningPlan plan,
                 double clock_period_ps);

  /// Does sample k (drawn via `sampler`) admit a feasible configuration?
  bool sample_feasible(const mc::Sampler& sampler, std::uint64_t k) const;

  /// Buffer configuration (delay steps per physical group) for sample k, or
  /// nullopt when the chip cannot be rescued.  This is the post-silicon
  /// "testing and configuration" step the paper lists as future work.
  std::optional<std::vector<int>> find_configuration(
      const mc::Sampler& sampler, std::uint64_t k) const;

  /// Yield over `samples` Monte-Carlo chips.
  YieldResult evaluate(const mc::Sampler& sampler, std::uint64_t samples,
                       int threads = 0) const;

  const TuningPlan& plan() const { return plan_; }
  double clock_period_ps() const { return clock_period_; }

 private:
  std::optional<std::vector<std::int64_t>> solve_sample(
      const mc::Sampler& sampler, std::uint64_t k) const;

  const ssta::SeqGraph* graph_;
  TuningPlan plan_;
  double clock_period_;
  /// Group variable per FF; -1 when the FF has no buffer.
  std::vector<int> var_of_ff_;
  /// Per-group window (union of members).
  std::vector<BufferWindow> group_windows_;
};

/// Yield with no buffers at all (the paper's Yo).
YieldResult original_yield(const ssta::SeqGraph& graph, double clock_period_ps,
                           const mc::Sampler& sampler, std::uint64_t samples,
                           int threads = 0);

/// Before/after yield measurement of a tuning plan at one clock period,
/// evaluated out-of-sample (its own seed): the paper's Yo, Y and Yi columns
/// as one machine-readable artifact.
struct YieldReport {
  double clock_period_ps = 0.0;
  std::uint64_t eval_seed = 0;
  YieldResult original;  ///< Yo: no buffers
  YieldResult tuned;     ///< Y: with the plan's buffers

  /// Yi = Y - Yo, in probability (not percent).
  double improvement() const { return tuned.yield - original.yield; }
};

/// Evaluates original and tuned yield over `samples` fresh Monte-Carlo chips
/// drawn with `eval_seed`.
YieldReport evaluate_yield_report(const ssta::SeqGraph& graph,
                                  const TuningPlan& plan,
                                  double clock_period_ps,
                                  std::uint64_t eval_seed,
                                  std::uint64_t samples, int threads = 0);

}  // namespace clktune::feas
