#include "netlist/paper_circuits.h"

namespace clktune::netlist {

std::vector<SyntheticSpec> paper_circuit_specs() {
  // (name, ns, ng) straight from Table I; one fixed seed per circuit.
  struct RowSpec {
    const char* name;
    int ns, ng;
    std::uint64_t seed;
  };
  constexpr RowSpec rows[] = {
      {"s9234", 211, 5597, 0x5923401},
      {"s13207", 638, 7951, 0x5132072},
      {"s15850", 534, 9772, 0x5158503},
      {"s38584", 1426, 19253, 0x5385844},
      {"mem_ctrl", 1065, 10327, 0x63E3C7215},
      {"usb_funct", 1746, 14381, 0x705BF6},
      {"ac97_ctrl", 2199, 9208, 0xAC97C781},
      {"pci_bridge32", 3321, 12494, 0x9C1B8D327},
  };
  std::vector<SyntheticSpec> specs;
  for (const RowSpec& r : rows) {
    SyntheticSpec s;
    s.name = r.name;
    s.num_flipflops = r.ns;
    s.num_gates = r.ng;
    s.seed = r.seed;
    specs.push_back(std::move(s));
  }
  return specs;
}

std::optional<SyntheticSpec> paper_circuit_spec(const std::string& name) {
  for (SyntheticSpec& s : paper_circuit_specs())
    if (s.name == name) return std::move(s);
  return std::nullopt;
}

}  // namespace clktune::netlist
