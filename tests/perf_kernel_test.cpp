// Tests for the zero-allocation sample kernel and cross-pass constant
// reuse: DiffConstraints workspace semantics, the shared quantizer, the
// engine's sample-constant cache toggle, and steady-state allocation
// counts in the Monte-Carlo inner loops.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/report_json.h"
#include "core/sample_solver.h"
#include "feas/diff_constraints.h"
#include "feas/yield_eval.h"
#include "mc/arc_constants.h"
#include "mc/delay_cache.h"
#include "mc/sampler.h"
#include "netlist/generator.h"
#include "netlist/nominal_sta.h"
#include "ssta/seq_graph.h"
#include "util/alloc_counter.h"

namespace clktune {
namespace {

using feas::DiffConstraints;

// ----------------------- DiffConstraints workspace -------------------------

void build_feasible_chain(DiffConstraints& sys) {
  sys.reset(4);
  sys.add(1, 0, 5);    // x1 - x0 <= 5
  sys.add(2, 1, -2);   // x2 - x1 <= -2
  sys.add(3, 2, 7);    // x3 - x2 <= 7
  sys.add(0, 3, 10);   // x0 - x3 <= 10
}

void build_negative_cycle(DiffConstraints& sys) {
  sys.reset(3);
  sys.add(1, 0, 3);
  sys.add(2, 1, -2);
  sys.add(0, 2, -4);  // cycle weight -3
}

TEST(DiffConstraintsWorkspaceTest, DirtyWorkspaceMatchesFreshObject) {
  DiffConstraints fresh;
  build_feasible_chain(fresh);
  const auto expected = fresh.solve();
  ASSERT_TRUE(expected.has_value());

  // Same system rebuilt on a workspace dirtied by a different system.
  DiffConstraints dirty;
  build_negative_cycle(dirty);
  EXPECT_FALSE(dirty.feasible());
  build_feasible_chain(dirty);
  const auto sol = dirty.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(*sol, *expected);
}

TEST(DiffConstraintsWorkspaceTest, SameSystemSolvedTwiceIsIdentical) {
  DiffConstraints sys;
  build_feasible_chain(sys);
  const auto first = sys.solve();
  const auto second = sys.solve();  // scratch is dirty from the first solve
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);

  build_negative_cycle(sys);
  EXPECT_FALSE(sys.feasible());
  EXPECT_FALSE(sys.feasible());  // and infeasibility is stable too
}

TEST(DiffConstraintsWorkspaceTest, EpochResetAfterNegativeCycleBailout) {
  DiffConstraints sys;
  build_negative_cycle(sys);
  EXPECT_FALSE(sys.feasible());

  // Shrinking reset after a bailout: stale adjacency from the 3-node system
  // must not leak into the new 2-node system.
  sys.reset(2);
  const auto unconstrained = sys.solve();
  ASSERT_TRUE(unconstrained.has_value());
  EXPECT_EQ(unconstrained->size(), 2u);
  EXPECT_EQ((*unconstrained)[0], 0);
  EXPECT_EQ((*unconstrained)[1], 0);

  sys.add(1, 0, -3);  // x1 - x0 <= -3
  const auto sol = sys.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_LE((*sol)[1] - (*sol)[0], -3);
}

TEST(DiffConstraintsWorkspaceTest, GrowingResetAfterBailout) {
  DiffConstraints sys;
  build_negative_cycle(sys);
  EXPECT_FALSE(sys.feasible());
  build_feasible_chain(sys);  // grows to 4 nodes
  EXPECT_TRUE(sys.feasible());
}

// --------------------------- shared quantizer ------------------------------

TEST(ArcConstantsTest, FloorStepsMatchesLegacyFormula) {
  const double step = 3.0;
  for (double v : {48.0, 29.5, -0.5, -3.0, -2.9999999999, 0.0, 1e-12}) {
    const auto legacy =
        static_cast<std::int64_t>(std::floor(v / step + 1e-9));
    EXPECT_EQ(mc::floor_steps(v, step), legacy) << v;
  }
}

struct KernelFixture {
  netlist::Design design;
  ssta::SeqGraph graph;
  double t0 = 0.0;

  explicit KernelFixture(int ns = 60, int ng = 400,
                         std::uint64_t seed = 1234) {
    netlist::SyntheticSpec spec;
    spec.num_flipflops = ns;
    spec.num_gates = ng;
    spec.seed = seed;
    design = netlist::generate(spec);
    graph = ssta::extract_seq_graph(design);
    t0 = netlist::nominal_min_period(design);
  }
};

TEST(ArcConstantsTest, FusedKernelMatchesEvaluateThenQuantize) {
  const KernelFixture fx;
  const mc::Sampler sampler(fx.graph, 99);
  const double step = fx.t0 / 160.0;

  mc::ArcSample sample;
  mc::ArcConstants quantized, fused;
  fused.resize(fx.graph.arcs.size());
  for (std::uint64_t k = 0; k < 16; ++k) {
    sampler.evaluate(k, sample);
    mc::quantize_arc_constants(fx.graph, sample, fx.t0, step, quantized);
    sampler.evaluate_constants(k, fx.t0, step, fused.setup_steps.data(),
                               fused.hold_steps.data());
    ASSERT_EQ(quantized.setup_steps, fused.setup_steps) << "sample " << k;
    ASSERT_EQ(quantized.hold_steps, fused.hold_steps) << "sample " << k;
  }
}

TEST(ArcConstantsTest, SolverArcConstantsUseSharedQuantizer) {
  const KernelFixture fx;
  const mc::Sampler sampler(fx.graph, 7);
  const double step = fx.t0 / 160.0;
  const core::SampleSolver solver(
      fx.graph, step, fx.t0,
      core::CandidateWindows::floating(fx.graph.num_ffs, 20));

  mc::ArcSample sample;
  sampler.evaluate(3, sample);
  std::vector<std::int64_t> setup64, hold64;
  solver.arc_constants(sample, setup64, hold64);
  mc::ArcConstants c;
  mc::quantize_arc_constants(fx.graph, sample, fx.t0, step, c);
  ASSERT_EQ(setup64.size(), c.setup_steps.size());
  for (std::size_t e = 0; e < setup64.size(); ++e) {
    EXPECT_EQ(setup64[e], c.setup_steps[e]);
    EXPECT_EQ(hold64[e], c.hold_steps[e]);
  }
}

TEST(ArcConstantsTest, ConstantCacheStreamingMatchesCached) {
  const KernelFixture fx;
  const mc::Sampler sampler(fx.graph, 42);
  const double step = fx.t0 / 160.0;
  const std::uint64_t n = 8;

  mc::SampleConstantCache cached(sampler, fx.t0, step, n, 1ull << 30);
  mc::SampleConstantCache streaming(sampler, fx.t0, step, n, 0);
  ASSERT_TRUE(cached.caching());
  ASSERT_FALSE(streaming.caching());
  EXPECT_GT(cached.bytes(), 0u);
  EXPECT_EQ(streaming.bytes(), 0u);

  mc::ArcConstants scratch_a, scratch_b;
  for (std::uint64_t k = 0; k < n; ++k) {
    const mc::ArcConstantsView a = cached.fill(k, scratch_a);
    const mc::ArcConstantsView b = streaming.fill(k, scratch_b);
    ASSERT_EQ(a.num_arcs, b.num_arcs);
    for (std::size_t e = 0; e < a.num_arcs; ++e) {
      ASSERT_EQ(a.setup_steps[e], b.setup_steps[e]);
      ASSERT_EQ(a.hold_steps[e], b.hold_steps[e]);
    }
  }
  // get() after fill: cached lookups reproduce the stored values.
  for (std::uint64_t k = 0; k < n; ++k) {
    const mc::ArcConstantsView a = cached.get(k, scratch_a);
    const mc::ArcConstantsView b = streaming.get(k, scratch_b);
    for (std::size_t e = 0; e < a.num_arcs; ++e)
      ASSERT_EQ(a.setup_steps[e], b.setup_steps[e]);
  }
}

// ------------------------ engine cache toggle ------------------------------

TEST(EngineSampleCacheTest, ToggleAndBudgetProduceIdenticalResults) {
  const KernelFixture fx(80, 600, 4242);
  const double t = netlist::nominal_min_period(fx.design) * 1.1;

  core::InsertionConfig cfg;
  cfg.num_samples = 200;

  cfg.enable_sample_cache = true;
  core::BufferInsertionEngine cached(fx.design, fx.graph, t, cfg);
  const std::string with_cache =
      core::insertion_result_json(cached.run()).dump();

  cfg.enable_sample_cache = false;  // --no-sample-cache
  core::BufferInsertionEngine uncached(fx.design, fx.graph, t, cfg);
  const std::string without_cache =
      core::insertion_result_json(uncached.run()).dump();

  cfg.enable_sample_cache = true;
  cfg.sample_cache_max_bytes = 64;  // forces streaming mode
  core::BufferInsertionEngine streaming(fx.design, fx.graph, t, cfg);
  const std::string with_streaming =
      core::insertion_result_json(streaming.run()).dump();

  // Identical JSON covers plan geometry, per-buffer stats, histograms and
  // the per-phase MILP counters — steps 1/2a/2b behave identically.
  EXPECT_EQ(with_cache, without_cache);
  EXPECT_EQ(with_cache, with_streaming);
}

// ------------------------ delay cache equivalence --------------------------

TEST(DelayCacheTest, CachedEvaluationMatchesDirectEvaluation) {
  const KernelFixture fx;
  const mc::Sampler sampler(fx.graph, 555);
  const double t = fx.t0;
  const std::uint64_t n = 400;

  feas::TuningPlan plan;
  plan.step_ps = t / 160.0;
  for (int f = 0; f < fx.graph.num_ffs; f += 10)
    plan.buffers.push_back(feas::BufferWindow{f, -10, 10});
  plan.reset_groups();
  const feas::YieldEvaluator eval(fx.graph, plan, t);

  const feas::YieldResult direct = eval.evaluate(sampler, n, 1);

  mc::SampleDelayCache cache(sampler, n, 1ull << 30);
  ASSERT_TRUE(cache.caching());
  const feas::YieldResult filled = eval.evaluate(cache, n, 1, true);
  const feas::YieldResult reused = eval.evaluate(cache, n, 1, false);

  mc::SampleDelayCache streaming(sampler, n, 0);
  const feas::YieldResult streamed = eval.evaluate(streaming, n, 1, false);

  EXPECT_EQ(direct.passing, filled.passing);
  EXPECT_EQ(direct.passing, reused.passing);
  EXPECT_EQ(direct.passing, streamed.passing);

  const feas::YieldResult yo_direct =
      feas::original_yield(fx.graph, t, sampler, n, 1);
  const feas::YieldResult yo_cached =
      feas::original_yield(fx.graph, t, cache, n, 1, false);
  EXPECT_EQ(yo_direct.passing, yo_cached.passing);
}

// ----------------------- zero-allocation guarantees ------------------------

TEST(ZeroAllocTest, DiffConstraintsSteadyStateDoesNotAllocate) {
  DiffConstraints sys;
  // Warm-up establishes the high-water capacity.
  build_feasible_chain(sys);
  ASSERT_TRUE(sys.feasible());
  build_negative_cycle(sys);
  ASSERT_FALSE(sys.feasible());

  util::AllocCounterScope scope;
  bool all_consistent = true;
  for (int i = 0; i < 100; ++i) {
    build_feasible_chain(sys);
    all_consistent = all_consistent && sys.solve_inplace() != nullptr;
    build_negative_cycle(sys);
    all_consistent = all_consistent && sys.solve_inplace() == nullptr;
  }
  const std::uint64_t allocs = scope.delta();
  EXPECT_TRUE(all_consistent);
  EXPECT_EQ(allocs, 0u);
}

TEST(ZeroAllocTest, YieldCheckSteadyStateDoesNotAllocate) {
  const KernelFixture fx;
  const mc::Sampler sampler(fx.graph, 321);
  const double t = fx.t0;
  feas::TuningPlan plan;
  plan.step_ps = t / 160.0;
  for (int f = 0; f < fx.graph.num_ffs; f += 10)
    plan.buffers.push_back(feas::BufferWindow{f, -10, 10});
  plan.reset_groups();
  const feas::YieldEvaluator eval(fx.graph, plan, t);

  std::uint64_t passing = 0;
  for (std::uint64_t k = 0; k < 16; ++k)  // warm the per-thread workspace
    passing += eval.sample_feasible(sampler, k) ? 1 : 0;

  util::AllocCounterScope scope;
  for (std::uint64_t k = 16; k < 216; ++k)
    passing += eval.sample_feasible(sampler, k) ? 1 : 0;
  const std::uint64_t allocs = scope.delta();
  EXPECT_EQ(allocs, 0u);
  EXPECT_GT(passing, 0u);  // keep the loop observable
}

TEST(ZeroAllocTest, SolverPassingSamplesSteadyStateDoesNotAllocate) {
  const KernelFixture fx;
  // Generous clock: every sample meets timing, exercising the seed-scan
  // fast path the insertion flow takes for passing chips.
  const double t = fx.t0 * 2.0;
  const double step = fx.t0 / 160.0;
  const core::SampleSolver solver(
      fx.graph, step, t,
      core::CandidateWindows::floating(fx.graph.num_ffs, 20));
  const mc::Sampler sampler(fx.graph, 777);
  const std::uint64_t n = 128;
  mc::SampleConstantCache cache(sampler, t, step, n, 1ull << 30);
  ASSERT_TRUE(cache.caching());

  core::SolveWorkspace ws;
  mc::ArcConstants scratch;
  // Warm-up: first sample sizes the workspace.
  int nk_sum = 0;
  {
    const core::SampleSolution sol = solver.solve(
        cache.fill(0, scratch), core::ConcentrateMode::toward_zero, nullptr,
        ws);
    ASSERT_TRUE(sol.fixable);
    ASSERT_EQ(sol.nk, 0) << "fixture must pass at 2x nominal period";
  }

  util::AllocCounterScope scope;
  for (std::uint64_t k = 1; k < n; ++k) {
    const core::SampleSolution sol = solver.solve(
        cache.fill(k, scratch), core::ConcentrateMode::toward_zero, nullptr,
        ws);
    nk_sum += sol.nk;
  }
  const std::uint64_t allocs = scope.delta();
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(nk_sum, 0);
}

}  // namespace
}  // namespace clktune
