// The job service: a bounded worker pool draining the persistent queue.
//
// JobScheduler owns a JobStore and a pool of worker threads.  Workers
// claim queued jobs in submission order, build an exec::Request from the
// stored document and drive exec::LocalExecutor with an observer that
// checkpoints every finished cell back into the store (and broadcasts it
// to live attach subscribers).  submit() is O(enqueue): parse + validate
// + one envelope write, never a cell of computation — the fire-and-forget
// admission path the serve daemon exposes as the `submit` verb.
//
// attach() is the read side and the replay guarantee: for cells that
// already finished it re-derives each artifact from the content-addressed
// result cache (recomputing deterministically on a cache miss), for cells
// still running it subscribes to the live broadcast — so an attach stream
// is byte-identical to the synchronous run/sweep stream no matter when
// the client connects, including after a daemon restart.
//
// Shutdown is cooperative and *non-terminal*: stop() asks running jobs to
// stop via the observer's cancelled() poll, but deliberately does not
// persist a `cancelled` state for them — the envelope stays `running` on
// disk, which is exactly what JobStore::load() resets to `queued` on the
// next start.  A restart therefore loses nothing (the recovery
// acceptance criterion); only an explicit cancel() is terminal.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "jobs/job.h"
#include "jobs/job_store.h"
#include "util/json.h"

namespace clktune::cache {
class ResultCache;
}

namespace clktune::jobs {

struct JobSchedulerOptions {
  /// Jobs executing concurrently.  Each running campaign additionally
  /// uses `threads` cell workers of its own.
  std::size_t workers = 2;
  /// Thread budget handed to each job's exec::Request (0 = hardware
  /// concurrency) — the serve daemon passes its own --threads through.
  int threads = 0;
  /// Terminal jobs retained (memory + disk) before the oldest are pruned.
  std::size_t retain_terminal = 512;
  /// Stuck-job watchdog: a running job whose last progress stamp (claim or
  /// per-cell checkpoint) is older than this deadline is cooperatively
  /// yanked back to `queued` and re-claimed — its checkpointed cells
  /// replay from the result cache, so only the stalled remainder re-runs.
  /// 0 disables the watchdog.
  int stall_timeout_ms = 0;
};

class JobScheduler {
 public:
  /// `directory` empty = no persistence (jobs forgotten on restart).
  /// `cache` is the daemon's result cache, not owned, must outlive the
  /// scheduler; attach replays finished cells through it.
  JobScheduler(std::string directory, cache::ResultCache* cache,
               JobSchedulerOptions options);
  ~JobScheduler();

  /// Recovers persisted jobs (interrupted ones re-queue) and starts the
  /// worker pool.  Idempotent.
  void start();
  /// Cooperatively stops: wakes idle workers, asks running jobs to yield,
  /// closes every attach subscription, joins the pool.  Idempotent and
  /// safe to call from any thread.
  void stop();

  /// Admits a document (optionally an explicit campaign index selection).
  /// Validates eagerly — a malformed document throws here, at submission,
  /// never later inside a worker.  Returns the queued record.
  JobRecord submit(const util::Json& doc, std::vector<std::size_t> indices);

  std::optional<JobRecord> get(const std::string& id) const;
  std::vector<JobRecord> list() const;

  /// Drops the oldest terminal job envelopes beyond `keep` (memory +
  /// disk).  Returns how many were removed.  The serve `prune` verb and
  /// `clktune job prune` expose this; submit() also applies the
  /// retain_terminal bound automatically.
  std::size_t prune(std::size_t keep) { return store_.prune_terminal(keep); }

  /// Requests cancellation: a queued job becomes `cancelled` immediately;
  /// a preparing/running one is flagged and reaches `cancelled` once the
  /// executor yields (poll status to observe it).  Terminal jobs are
  /// returned unchanged.  Throws JobError on an unknown id.
  JobRecord cancel(const std::string& id);

  /// Streams the job's "result" frames to `sink` — finished cells
  /// replayed from the cache first, live cells as they complete — until
  /// the job is terminal or the scheduler stops.  `sink` returns false to
  /// detach early.  Returns the record as of stream end (callers emit the
  /// terminal frame from its state).  Throws JobError on an unknown id.
  JobRecord attach(const std::string& id,
                   const std::function<bool(const util::Json&)>& sink);

  /// Jobs per state, for the daemon status frame:
  /// {"queued":q,"preparing":p,"running":r,"done":d,"error":e,
  ///  "cancelled":c}.
  util::Json counters() const;

 private:
  /// One live attach: a bounded-by-job-size frame queue fed by the
  /// broadcast side, drained by the attach loop.
  struct Subscription {
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<util::Json> frames;
    bool closed = false;
  };

  void worker_loop();
  void watchdog_loop();
  void run_job(JobRecord job);
  void broadcast(const std::string& id, const util::Json& frame);
  void close_subscribers(const std::string& id);
  void remove_subscriber(const std::string& id,
                         const std::shared_ptr<Subscription>& sub);
  bool cancel_requested(const std::string& id) const;
  bool stall_requested(const std::string& id) const;
  void stamp_progress(const std::string& id);

  JobStore store_;
  cache::ResultCache* cache_;
  JobSchedulerOptions options_;

  std::mutex queue_mutex_;
  std::condition_variable queue_ready_;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> workers_;
  std::thread watchdog_;

  mutable std::mutex cancel_mutex_;
  std::set<std::string> cancel_requested_;
  /// Jobs the watchdog has flagged; observed by the cancelled() poll and
  /// translated into a re-queue (not a cancel) when the executor yields.
  std::set<std::string> stall_requested_;

  /// Steady-clock submission stamps, consumed (and erased) by the worker
  /// that claims the job to record queue-wait latency.  A recovered job
  /// has no stamp — its pre-restart wait is unknowable, so it records
  /// nothing rather than a lie.
  mutable std::mutex obs_mutex_;
  std::map<std::string, std::uint64_t> queued_at_ns_;
  /// Steady-clock last-progress stamps of in-flight jobs (claim and every
  /// checkpoint); the watchdog compares them against stall_timeout_ms.
  std::map<std::string, std::uint64_t> progress_ns_;

  mutable std::mutex sub_mutex_;
  std::map<std::string, std::vector<std::shared_ptr<Subscription>>> subs_;
};

}  // namespace clktune::jobs
