#include "scenario/scenario.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "core/report_json.h"
#include "mc/period_mc.h"
#include "mc/sampler.h"
#include "netlist/bench_io.h"
#include "netlist/nominal_sta.h"
#include "netlist/paper_circuits.h"
#include "obs/trace.h"
#include "ssta/seq_graph.h"
#include "util/timer.h"

namespace clktune::scenario {

using util::Json;
using util::JsonError;

namespace {

/// Object reader that tracks which keys were consumed and rejects unknown
/// members, so a typo'd key fails loudly instead of silently running with
/// defaults.
class ObjectReader {
 public:
  ObjectReader(const Json& j, std::string context)
      : json_(j), context_(std::move(context)) {
    if (!j.is_object())
      throw JsonError(context_ + ": expected a JSON object");
  }

  const Json* find(const std::string& key) {
    consumed_.push_back(key);
    return json_.find(key);
  }

  bool read(const std::string& key, double& out) {
    const Json* v = find(key);
    if (v == nullptr) return false;
    out = v->as_double();
    return true;
  }
  bool read(const std::string& key, int& out) {
    const Json* v = find(key);
    if (v == nullptr) return false;
    out = static_cast<int>(v->as_int());
    return true;
  }
  bool read(const std::string& key, long& out) {
    const Json* v = find(key);
    if (v == nullptr) return false;
    out = static_cast<long>(v->as_int());
    return true;
  }
  bool read(const std::string& key, std::uint64_t& out) {
    const Json* v = find(key);
    if (v == nullptr) return false;
    out = v->as_uint();
    return true;
  }
  bool read(const std::string& key, bool& out) {
    const Json* v = find(key);
    if (v == nullptr) return false;
    out = v->as_bool();
    return true;
  }
  bool read(const std::string& key, std::string& out) {
    const Json* v = find(key);
    if (v == nullptr) return false;
    out = v->as_string();
    return true;
  }
  bool read(const std::string& key, std::optional<double>& out) {
    const Json* v = find(key);
    if (v == nullptr) return false;
    out = v->as_double();
    return true;
  }

  /// Call after all read()s: any member never asked for is an error.
  void reject_unknown() const {
    for (const auto& [key, value] : json_.as_object()) {
      bool known = false;
      for (const std::string& c : consumed_)
        if (c == key) {
          known = true;
          break;
        }
      if (!known)
        throw JsonError(context_ + ": unknown key \"" + key + "\"");
    }
  }

 private:
  const Json& json_;
  std::string context_;
  std::vector<std::string> consumed_;
};

netlist::SyntheticSpec synthetic_from_json(const Json& j) {
  netlist::SyntheticSpec s;
  ObjectReader r(j, "design.synthetic");
  r.read("name", s.name);
  r.read("num_flipflops", s.num_flipflops);
  r.read("num_gates", s.num_gates);
  r.read("seed", s.seed);
  r.read("avg_sources", s.avg_sources);
  r.read("self_loop_prob", s.self_loop_prob);
  r.read("deep_self_loop_frac", s.deep_self_loop_frac);
  r.read("cone_size_sigma", s.cone_size_sigma);
  r.read("forced_deep_fraction", s.forced_deep_fraction);
  r.read("min_depth", s.min_depth);
  r.read("max_depth", s.max_depth);
  r.read("skew_amplitude_factor", s.skew_amplitude_factor);
  r.read("skew_noise_ps", s.skew_noise_ps);
  r.read("skew_wavelength_factor", s.skew_wavelength_factor);
  r.read("pi_tap_prob", s.pi_tap_prob);
  r.read("num_primary_inputs", s.num_primary_inputs);
  r.read("num_primary_outputs", s.num_primary_outputs);
  r.reject_unknown();
  return s;
}

Json synthetic_to_json(const netlist::SyntheticSpec& s) {
  const netlist::SyntheticSpec defaults;
  Json j = Json::object();
  j.set("name", s.name);
  j.set("num_flipflops", s.num_flipflops);
  j.set("num_gates", s.num_gates);
  j.set("seed", s.seed);
  // Shape knobs only when they differ from defaults, to keep specs small.
  if (s.avg_sources != defaults.avg_sources)
    j.set("avg_sources", s.avg_sources);
  if (s.self_loop_prob != defaults.self_loop_prob)
    j.set("self_loop_prob", s.self_loop_prob);
  if (s.deep_self_loop_frac != defaults.deep_self_loop_frac)
    j.set("deep_self_loop_frac", s.deep_self_loop_frac);
  if (s.cone_size_sigma != defaults.cone_size_sigma)
    j.set("cone_size_sigma", s.cone_size_sigma);
  if (s.forced_deep_fraction != defaults.forced_deep_fraction)
    j.set("forced_deep_fraction", s.forced_deep_fraction);
  if (s.min_depth != defaults.min_depth) j.set("min_depth", s.min_depth);
  if (s.max_depth != defaults.max_depth) j.set("max_depth", s.max_depth);
  if (s.skew_amplitude_factor != defaults.skew_amplitude_factor)
    j.set("skew_amplitude_factor", s.skew_amplitude_factor);
  if (s.skew_noise_ps != defaults.skew_noise_ps)
    j.set("skew_noise_ps", s.skew_noise_ps);
  if (s.skew_wavelength_factor != defaults.skew_wavelength_factor)
    j.set("skew_wavelength_factor", s.skew_wavelength_factor);
  if (s.pi_tap_prob != defaults.pi_tap_prob)
    j.set("pi_tap_prob", s.pi_tap_prob);
  if (s.num_primary_inputs != defaults.num_primary_inputs)
    j.set("num_primary_inputs", s.num_primary_inputs);
  if (s.num_primary_outputs != defaults.num_primary_outputs)
    j.set("num_primary_outputs", s.num_primary_outputs);
  return j;
}

core::InsertionConfig insertion_from_json(const Json& j) {
  core::InsertionConfig c;
  ObjectReader r(j, "insertion");
  r.read("num_samples", c.num_samples);
  r.read("sample_seed", c.sample_seed);
  r.read("steps", c.steps);
  r.read("max_range_ps", c.max_range_ps);
  r.read("prune_usage_max_per_10k", c.prune_usage_max_per_10k);
  r.read("critical_usage_per_10k", c.critical_usage_per_10k);
  r.read("final_usage_min_per_10k", c.final_usage_min_per_10k);
  r.read("window_skip_fraction", c.window_skip_fraction);
  r.read("corr_threshold", c.corr_threshold);
  r.read("dist_factor", c.dist_factor);
  r.read("max_buffers", c.max_buffers);
  r.read("average_nonzero_only", c.average_nonzero_only);
  r.read("enable_concentration", c.enable_concentration);
  r.read("enable_pruning", c.enable_pruning);
  r.read("enable_grouping", c.enable_grouping);
  r.read("milp_max_nodes", c.milp_max_nodes);
  r.reject_unknown();
  return c;
}

Json insertion_to_json(const core::InsertionConfig& c) {
  const core::InsertionConfig defaults;
  Json j = Json::object();
  j.set("num_samples", c.num_samples);
  j.set("sample_seed", c.sample_seed);
  j.set("steps", c.steps);
  if (c.max_range_ps != defaults.max_range_ps)
    j.set("max_range_ps", c.max_range_ps);
  if (c.prune_usage_max_per_10k != defaults.prune_usage_max_per_10k)
    j.set("prune_usage_max_per_10k", c.prune_usage_max_per_10k);
  if (c.critical_usage_per_10k != defaults.critical_usage_per_10k)
    j.set("critical_usage_per_10k", c.critical_usage_per_10k);
  if (c.final_usage_min_per_10k != defaults.final_usage_min_per_10k)
    j.set("final_usage_min_per_10k", c.final_usage_min_per_10k);
  if (c.window_skip_fraction != defaults.window_skip_fraction)
    j.set("window_skip_fraction", c.window_skip_fraction);
  if (c.corr_threshold != defaults.corr_threshold)
    j.set("corr_threshold", c.corr_threshold);
  if (c.dist_factor != defaults.dist_factor)
    j.set("dist_factor", c.dist_factor);
  if (c.max_buffers != defaults.max_buffers)
    j.set("max_buffers", c.max_buffers);
  if (c.average_nonzero_only != defaults.average_nonzero_only)
    j.set("average_nonzero_only", c.average_nonzero_only);
  if (c.enable_concentration != defaults.enable_concentration)
    j.set("enable_concentration", c.enable_concentration);
  if (c.enable_pruning != defaults.enable_pruning)
    j.set("enable_pruning", c.enable_pruning);
  if (c.enable_grouping != defaults.enable_grouping)
    j.set("enable_grouping", c.enable_grouping);
  if (c.milp_max_nodes != defaults.milp_max_nodes)
    j.set("milp_max_nodes", c.milp_max_nodes);
  return j;
}

std::vector<double> double_array(const Json& j, const std::string& context) {
  std::vector<double> values;
  for (const Json& v : j.as_array()) values.push_back(v.as_double());
  if (values.empty())
    throw JsonError(context + " must not be empty");
  return values;
}

Json double_array_json(const std::vector<double>& values) {
  Json j = Json::array();
  for (const double v : values) j.push_back(Json(v));
  return j;
}

}  // namespace

// ------------------------------------------------------------ ScenarioKind

const char* kind_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::yield: return "yield";
    case ScenarioKind::criticality: return "criticality";
    case ScenarioKind::binning: return "binning";
  }
  return "yield";
}

ScenarioKind kind_from_name(const std::string& name) {
  if (name == "yield") return ScenarioKind::yield;
  if (name == "criticality") return ScenarioKind::criticality;
  if (name == "binning") return ScenarioKind::binning;
  throw JsonError("scenario: unknown kind \"" + name + "\"");
}

// ----------------------------------------------------------- DesignSource

netlist::Design DesignSource::build() const {
  switch (kind) {
    case DesignSourceKind::bench_file: {
      netlist::Design design = netlist::read_bench_file(bench_path);
      if (skew_sigma_factor > 0.0) {
        const double t0 = netlist::nominal_min_period(design);
        netlist::apply_synthetic_skew(design, skew_sigma_factor * t0,
                                      skew_seed);
      }
      return design;
    }
    case DesignSourceKind::synthetic:
      return netlist::generate(synthetic);
    case DesignSourceKind::paper_circuit: {
      const std::optional<netlist::SyntheticSpec> spec =
          netlist::paper_circuit_spec(paper_circuit);
      if (!spec)
        throw JsonError("design: unknown paper circuit \"" + paper_circuit +
                        "\"");
      return netlist::generate(*spec);
    }
  }
  throw JsonError("design: invalid source kind");
}

void VariationOverrides::apply(netlist::Design& design) const {
  netlist::VariationModel& vm = design.library.variation();
  if (local_sigma) vm.local_sigma = *local_sigma;
  if (regional_sigma) vm.regional_sigma = *regional_sigma;
  if (global_sens_scale)
    for (double& s : vm.global_sens) s *= *global_sens_scale;
}

std::string ClockPolicy::label() const {
  if (period_ps) return "fixed";
  if (sigma_offset == 0.0) return "muT";
  if (sigma_offset == 1.0) return "muT+s";
  if (sigma_offset == -1.0) return "muT-s";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "muT%+gs", sigma_offset);
  return buf;
}

// ----------------------------------------------------------- ScenarioSpec

ScenarioSpec ScenarioSpec::from_json(const Json& j) {
  ScenarioSpec spec;
  ObjectReader r(j, "scenario");
  r.read("name", spec.name);

  std::string kind = "yield";
  r.read("kind", kind);
  spec.kind = kind_from_name(kind);

  const Json* design = r.find("design");
  if (design == nullptr) throw JsonError("scenario: missing \"design\"");
  {
    ObjectReader dr(*design, "design");
    const Json* bench = dr.find("bench_file");
    const Json* synth = dr.find("synthetic");
    const Json* paper = dr.find("paper_circuit");
    const int sources = (bench != nullptr) + (synth != nullptr) +
                        (paper != nullptr);
    if (sources != 1)
      throw JsonError(
          "design: exactly one of bench_file / synthetic / paper_circuit "
          "is required");
    if (bench != nullptr) {
      spec.design.kind = DesignSourceKind::bench_file;
      spec.design.bench_path = bench->as_string();
      dr.read("skew_sigma_factor", spec.design.skew_sigma_factor);
      dr.read("skew_seed", spec.design.skew_seed);
    } else if (synth != nullptr) {
      spec.design.kind = DesignSourceKind::synthetic;
      spec.design.synthetic = synthetic_from_json(*synth);
    } else {
      spec.design.kind = DesignSourceKind::paper_circuit;
      spec.design.paper_circuit = paper->as_string();
    }
    dr.reject_unknown();
  }

  if (const Json* variation = r.find("variation")) {
    ObjectReader vr(*variation, "variation");
    vr.read("local_sigma", spec.variation.local_sigma);
    vr.read("regional_sigma", spec.variation.regional_sigma);
    vr.read("global_sens_scale", spec.variation.global_sens_scale);
    vr.reject_unknown();
  }

  if (const Json* clock = r.find("clock")) {
    ObjectReader cr(*clock, "clock");
    cr.read("period_ps", spec.clock.period_ps);
    cr.read("sigma_offset", spec.clock.sigma_offset);
    cr.read("period_samples", spec.clock.period_samples);
    cr.read("period_seed", spec.clock.period_seed);
    cr.reject_unknown();
  }

  if (const Json* insertion = r.find("insertion"))
    spec.insertion = insertion_from_json(*insertion);

  if (const Json* evaluation = r.find("evaluation")) {
    ObjectReader er(*evaluation, "evaluation");
    er.read("samples", spec.evaluation.samples);
    er.read("seed", spec.evaluation.seed);
    er.reject_unknown();
  }

  if (const Json* criticality = r.find("criticality")) {
    if (spec.kind != ScenarioKind::criticality)
      throw JsonError(
          "scenario: \"criticality\" options require kind \"criticality\"");
    ObjectReader cr(*criticality, "criticality");
    cr.read("top_k", spec.criticality.top_k);
    cr.reject_unknown();
  }

  if (const Json* bins = r.find("bins")) {
    if (spec.kind != ScenarioKind::binning)
      throw JsonError("scenario: \"bins\" options require kind \"binning\"");
    ObjectReader br(*bins, "bins");
    if (const Json* periods = br.find("periods_ps"))
      spec.bins.periods_ps = double_array(*periods, "bins.periods_ps");
    if (const Json* offsets = br.find("sigma_offsets"))
      spec.bins.sigma_offsets = double_array(*offsets, "bins.sigma_offsets");
    br.reject_unknown();
  }

  r.read("yield_target", spec.yield_target);
  r.reject_unknown();
  spec.validate();
  return spec;
}

Json ScenarioSpec::to_json() const {
  Json j = Json::object();
  j.set("name", name);
  // Only non-default kinds are tagged, so pre-kind yield documents
  // round-trip byte-identically.
  if (kind != ScenarioKind::yield) j.set("kind", kind_name(kind));

  Json d = Json::object();
  switch (design.kind) {
    case DesignSourceKind::bench_file:
      d.set("bench_file", design.bench_path);
      d.set("skew_sigma_factor", design.skew_sigma_factor);
      d.set("skew_seed", design.skew_seed);
      break;
    case DesignSourceKind::synthetic:
      d.set("synthetic", synthetic_to_json(design.synthetic));
      break;
    case DesignSourceKind::paper_circuit:
      d.set("paper_circuit", design.paper_circuit);
      break;
  }
  j.set("design", std::move(d));

  if (variation.any()) {
    Json v = Json::object();
    if (variation.local_sigma) v.set("local_sigma", *variation.local_sigma);
    if (variation.regional_sigma)
      v.set("regional_sigma", *variation.regional_sigma);
    if (variation.global_sens_scale)
      v.set("global_sens_scale", *variation.global_sens_scale);
    j.set("variation", std::move(v));
  }

  Json c = Json::object();
  if (clock.period_ps) {
    c.set("period_ps", *clock.period_ps);
  } else {
    c.set("sigma_offset", clock.sigma_offset);
    c.set("period_samples", clock.period_samples);
    c.set("period_seed", clock.period_seed);
  }
  j.set("clock", std::move(c));

  j.set("insertion", insertion_to_json(insertion));

  Json e = Json::object();
  e.set("samples", evaluation.samples);
  e.set("seed", evaluation.seed);
  j.set("evaluation", std::move(e));

  if (kind == ScenarioKind::criticality) {
    Json c = Json::object();
    c.set("top_k", criticality.top_k);
    j.set("criticality", std::move(c));
  }
  if (kind == ScenarioKind::binning) {
    Json b = Json::object();
    if (!bins.periods_ps.empty())
      b.set("periods_ps", double_array_json(bins.periods_ps));
    if (!bins.sigma_offsets.empty())
      b.set("sigma_offsets", double_array_json(bins.sigma_offsets));
    j.set("bins", std::move(b));
  }

  if (yield_target) j.set("yield_target", *yield_target);
  return j;
}

void ScenarioSpec::validate() const {
  const auto bad = [](const std::string& msg) {
    throw JsonError("scenario: " + msg);
  };
  if (name.empty()) bad("name must not be empty");
  if (design.kind == DesignSourceKind::bench_file &&
      design.bench_path.empty())
    bad("design.bench_file must not be empty");
  if (design.kind == DesignSourceKind::synthetic) {
    if (design.synthetic.num_flipflops < 2)
      bad("design.synthetic.num_flipflops must be >= 2");
    if (design.synthetic.num_gates < design.synthetic.num_flipflops)
      bad("design.synthetic.num_gates must be >= num_flipflops");
  }
  if (clock.period_ps && *clock.period_ps <= 0.0)
    bad("clock.period_ps must be positive");
  if (!clock.period_ps && clock.period_samples < 2)
    bad("clock.period_samples must be >= 2");
  if (insertion.num_samples == 0) bad("insertion.num_samples must be >= 1");
  if (insertion.steps < 1) bad("insertion.steps must be >= 1");
  if (insertion.window_skip_fraction < 0.0 ||
      insertion.window_skip_fraction > 1.0)
    bad("insertion.window_skip_fraction must be in [0, 1]");
  if (insertion.corr_threshold < -1.0 || insertion.corr_threshold > 1.0)
    bad("insertion.corr_threshold must be in [-1, 1]");
  if (evaluation.samples == 0) bad("evaluation.samples must be >= 1");
  if (kind != ScenarioKind::yield && yield_target)
    bad("yield_target is only meaningful for kind \"yield\"");
  if (kind != ScenarioKind::binning && bins.any())
    bad("bins options require kind \"binning\"");
  if (kind == ScenarioKind::criticality && criticality.top_k < 1)
    bad("criticality.top_k must be >= 1");
  if (kind == ScenarioKind::binning) {
    const bool explicit_ladder = !bins.periods_ps.empty();
    const bool derived_ladder = !bins.sigma_offsets.empty();
    if (explicit_ladder == derived_ladder)
      bad("bins requires exactly one of periods_ps / sigma_offsets");
    const std::vector<double>& ladder =
        explicit_ladder ? bins.periods_ps : bins.sigma_offsets;
    if (ladder.size() > 64) bad("bins ladder is capped at 64 rungs");
    for (std::size_t r = 0; r < ladder.size(); ++r) {
      if (explicit_ladder && ladder[r] <= 0.0)
        bad("bins.periods_ps must be positive");
      if (r > 0 && ladder[r] <= ladder[r - 1])
        bad("bins ladder must be strictly ascending");
    }
    if (derived_ladder && clock.period_ps)
      bad("bins.sigma_offsets requires the derived clock policy "
          "(no clock.period_ps)");
  }
  if (yield_target && (*yield_target < 0.0 || *yield_target > 1.0))
    bad("yield_target must be in [0, 1]");
  if (variation.local_sigma && *variation.local_sigma < 0.0)
    bad("variation.local_sigma must be >= 0");
  if (variation.regional_sigma && *variation.regional_sigma < 0.0)
    bad("variation.regional_sigma must be >= 0");
  if (variation.global_sens_scale && *variation.global_sens_scale < 0.0)
    bad("variation.global_sens_scale must be >= 0");
}

// --------------------------------------------------------- ScenarioResult

Json ScenarioResult::to_json(bool include_timing) const {
  Json j = Json::object();
  // Kind-tagged artifacts lead with the tag; yield artifacts stay exactly
  // the pre-kind bytes.
  if (kind != ScenarioKind::yield) j.set("kind", kind_name(kind));
  j.set("name", name);
  j.set("setting", setting);
  j.set("clock_period_ps", clock_period_ps);
  j.set("period_mu_ps", period_mu_ps);
  j.set("period_sigma_ps", period_sigma_ps);
  Json d = Json::object();
  d.set("num_flipflops", num_flipflops);
  d.set("num_gates", num_gates);
  d.set("num_arcs", static_cast<std::uint64_t>(num_arcs));
  j.set("design", std::move(d));
  j.set("insertion", core::insertion_result_json(insertion, include_timing));
  switch (kind) {
    case ScenarioKind::yield:
      j.set("yield", core::yield_report_json(yield));
      break;
    case ScenarioKind::criticality:
      j.set("criticality", criticality.to_json());
      break;
    case ScenarioKind::binning:
      j.set("binning", binning.to_json());
      break;
  }
  j.set("met_target", met_target);
  if (include_timing) j.set("seconds", seconds);
  return j;
}

ScenarioResult ScenarioResult::from_json(const Json& j) {
  ScenarioResult result;
  if (const Json* kind = j.find("kind"))
    result.kind = kind_from_name(kind->as_string());
  result.name = j.at("name").as_string();
  result.setting = j.at("setting").as_string();
  result.clock_period_ps = j.at("clock_period_ps").as_double();
  result.period_mu_ps = j.at("period_mu_ps").as_double();
  result.period_sigma_ps = j.at("period_sigma_ps").as_double();
  const Json& design = j.at("design");
  result.num_flipflops = static_cast<int>(design.at("num_flipflops").as_int());
  result.num_gates = static_cast<int>(design.at("num_gates").as_int());
  result.num_arcs = static_cast<std::size_t>(design.at("num_arcs").as_uint());
  result.insertion = core::insertion_result_from_json(j.at("insertion"));
  switch (result.kind) {
    case ScenarioKind::yield:
      result.yield = core::yield_report_from_json(j.at("yield"));
      break;
    case ScenarioKind::criticality:
      result.criticality =
          analysis::CriticalityReport::from_json(j.at("criticality"));
      break;
    case ScenarioKind::binning:
      result.binning = analysis::BinningReport::from_json(j.at("binning"));
      break;
  }
  result.met_target = j.at("met_target").as_bool();
  if (const Json* seconds = j.find("seconds"))
    result.seconds = seconds->as_double();
  return result;
}

ScenarioResult run_scenario(const ScenarioSpec& spec, int threads) {
  const util::Stopwatch timer;
  spec.validate();

  ScenarioResult result;
  result.name = spec.name;
  result.kind = spec.kind;
  result.setting = spec.clock.label();

  netlist::Design design = spec.design.build();
  ssta::SeqGraph graph;
  {
    const obs::TraceSpan span("design_build");
    spec.variation.apply(design);
    graph = ssta::extract_seq_graph(design);
  }
  result.num_flipflops = graph.num_ffs;
  result.num_gates = static_cast<int>(design.netlist.gates().size());
  result.num_arcs = graph.arcs.size();

  double period = 0.0;
  if (spec.clock.period_ps) {
    period = *spec.clock.period_ps;
  } else {
    const obs::TraceSpan span("period_mc");
    const mc::Sampler period_sampler(graph, spec.clock.period_seed);
    const mc::PeriodStats stats = mc::sample_min_period(
        period_sampler, spec.clock.period_samples, threads);
    result.period_mu_ps = stats.mu();
    result.period_sigma_ps = stats.sigma();
    period = stats.mu() + spec.clock.sigma_offset * stats.sigma();
  }
  result.clock_period_ps = period;

  core::InsertionConfig config = spec.insertion;
  if (threads > 0) config.threads = threads;
  core::BufferInsertionEngine engine(design, graph, period, config);
  {
    const obs::TraceSpan span("insertion");
    result.insertion = engine.run();
  }

  switch (spec.kind) {
    case ScenarioKind::yield: {
      const obs::TraceSpan span("yield_eval");
      result.yield = feas::evaluate_yield_report(
          graph, result.insertion.plan, period, spec.evaluation.seed,
          spec.evaluation.samples, threads);
      result.met_target = !spec.yield_target ||
                          result.yield.tuned.yield >= *spec.yield_target;
      break;
    }
    case ScenarioKind::criticality: {
      const obs::TraceSpan span("criticality");
      result.criticality = analysis::compute_criticality(
          graph, result.insertion.plan, period, spec.evaluation.seed,
          spec.evaluation.samples, spec.criticality, threads);
      break;
    }
    case ScenarioKind::binning: {
      const obs::TraceSpan span("binning");
      std::vector<double> ladder = spec.bins.periods_ps;
      if (ladder.empty()) {
        // Derived rungs mu + k * sigma; validation guarantees the derived
        // clock policy, so period stats exist.
        for (const double offset : spec.bins.sigma_offsets)
          ladder.push_back(result.period_mu_ps +
                           offset * result.period_sigma_ps);
      }
      result.binning = analysis::compute_binning(
          graph, result.insertion.plan, ladder, spec.evaluation.seed,
          spec.evaluation.samples, threads);
      break;
    }
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace clktune::scenario
