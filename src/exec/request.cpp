#include "exec/request.h"

#include <utility>

namespace clktune::exec {

using util::Json;

Request Request::for_scenario(scenario::ScenarioSpec spec) {
  Request request;
  request.kind = Kind::scenario;
  request.scenario = std::move(spec);
  return request;
}

Request Request::for_campaign(scenario::CampaignSpec spec) {
  Request request;
  request.kind = Kind::campaign;
  request.campaign = std::move(spec);
  return request;
}

Request Request::from_json(const Json& doc) {
  if (doc.contains("base"))
    return for_campaign(scenario::CampaignSpec::from_json(doc));
  return for_scenario(scenario::ScenarioSpec::from_json(doc));
}

Json Request::document() const {
  return kind == Kind::scenario ? scenario.to_json() : campaign.to_json();
}

std::size_t Request::expansion_size() const {
  return kind == Kind::scenario ? 1 : campaign.expansion_size();
}

std::size_t Request::shard_cells() const {
  return shard_cell_count(expansion_size(), shard_index, shard_count);
}

void Request::validate() const {
  if (shard_count == 0 || shard_index >= shard_count)
    throw ExecError("exec: shard index must satisfy 0 <= i < n");
  if (kind == Kind::scenario && shard_count != 1)
    throw ExecError("exec: a scenario request cannot be sharded");
}

Json Outcome::artifact(bool include_timing) const {
  return kind == Request::Kind::scenario ? result.to_json(include_timing)
                                         : summary.to_json(include_timing);
}

}  // namespace clktune::exec
