# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;60;add_test;/root/repo/CMakeLists.txt;0;")
add_test(lp_test "/root/repo/build/lp_test")
set_tests_properties(lp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;60;add_test;/root/repo/CMakeLists.txt;0;")
add_test(milp_test "/root/repo/build/milp_test")
set_tests_properties(milp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;60;add_test;/root/repo/CMakeLists.txt;0;")
add_test(ssta_test "/root/repo/build/ssta_test")
set_tests_properties(ssta_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;60;add_test;/root/repo/CMakeLists.txt;0;")
add_test(netlist_test "/root/repo/build/netlist_test")
set_tests_properties(netlist_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;60;add_test;/root/repo/CMakeLists.txt;0;")
add_test(mc_feas_test "/root/repo/build/mc_feas_test")
set_tests_properties(mc_feas_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;60;add_test;/root/repo/CMakeLists.txt;0;")
add_test(core_solver_test "/root/repo/build/core_solver_test")
set_tests_properties(core_solver_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;60;add_test;/root/repo/CMakeLists.txt;0;")
add_test(core_engine_test "/root/repo/build/core_engine_test")
set_tests_properties(core_engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;60;add_test;/root/repo/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;60;add_test;/root/repo/CMakeLists.txt;0;")
add_test(scenario_test "/root/repo/build/scenario_test")
set_tests_properties(scenario_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;60;add_test;/root/repo/CMakeLists.txt;0;")
