// Client/server latency cross-check: the load harness's own per-verb
// latency histograms held against the daemons' clktune_serve_request_seconds
// histograms, fetched through the `metrics` serve verb.
//
// The harness and the server measure the same requests from opposite ends
// of the wire, so their histograms must agree: per verb, the server saw
// the same number of requests the client completed (give or take the
// client's transport errors), and the server-side handling quantiles lie
// below the client-observed ones — a client can never finish a request
// faster than the server handled it, modulo one log2 bucket of rounding —
// while the client-observed quantiles stay within a configurable overhead
// factor of the server's.  Disagreement means one side's instrumentation
// lies, which is exactly what this check exists to catch (the PR-7
// metrics are only trustworthy if an independent observer confirms them).
//
// Fleet-aware: snapshots are fetched per daemon and their histogram
// buckets merged (the exposition lists non-cumulative log2 buckets, which
// sum across processes), so one cross-check covers a whole pool.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fleet/fleet_spec.h"
#include "serve/client.h"
#include "util/json.h"

namespace clktune::load {

/// One histogram reconstructed from the wire exposition: non-cumulative
/// (upper_bound, count) buckets plus the running sum, mergeable across
/// daemons and subtractable across time.
struct WireHistogram {
  std::map<double, std::uint64_t> buckets;  ///< le seconds -> count
  double sum_seconds = 0.0;

  std::uint64_t count() const;
  /// Upper-bound estimate of the q-quantile (0 < q <= 1), like
  /// obs::Histogram::Snapshot::quantile; 0 when empty.
  double quantile(double q) const;
  void merge(const WireHistogram& other);
};

/// The server-side counters the cross-check consumes, summed over every
/// fleet member at one point in time.
struct ServerSnapshot {
  std::map<std::string, WireHistogram> verb_latency;  ///< by verb label
  std::uint64_t busy_rejections = 0;
  /// Sum of clktune_fault_injected_total across daemons — nonzero marks
  /// the run chaos-polluted, and the report stamps it so the perf gate
  /// refuses the numbers.
  std::uint64_t faults_injected = 0;

  /// after - before, member-wise; before-only buckets are ignored (the
  /// registry's counters are monotonic).
  static ServerSnapshot delta(const ServerSnapshot& before,
                              const ServerSnapshot& after);
};

/// One metrics round trip per fleet member, summed.  Throws
/// std::runtime_error when any member is unreachable or answers with an
/// error frame — the harness treats that as "cannot measure", exit 2.
ServerSnapshot fetch_server_snapshot(const fleet::FleetSpec& targets,
                                     const serve::SubmitOptions& timeouts);

/// Client-side observation of one verb, as the harness recorded it.
struct ClientVerb {
  std::string verb;
  std::uint64_t count = 0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
};

struct VerbAgreement {
  std::string verb;
  std::uint64_t client_count = 0, server_count = 0;
  double client_p50 = 0.0, server_p50 = 0.0;
  double client_p99 = 0.0, server_p99 = 0.0;
  bool ok = true;
  std::string note;  ///< which rule failed, empty when ok

  util::Json to_json() const;
};

struct Agreement {
  bool ok = true;
  std::vector<VerbAgreement> verbs;
  util::Json to_json() const;
};

/// Tolerances for cross_check.  `overhead_factor` bounds how much worse
/// the client may observe a quantile than the server (wire + connect +
/// admission-queue wait); `slack_seconds` is an absolute allowance that
/// keeps microsecond-scale verbs (status) from failing on constant
/// overhead.  The physics direction — server above client — is fixed at
/// one log2 bucket (2x) plus the slack, because nothing legitimate can
/// exceed it.
struct XcheckTolerance {
  double overhead_factor = 16.0;
  double slack_seconds = 0.05;
};

/// Holds every client-observed verb against the server delta.
/// `transport_errors` loosens the count comparison: a request that died
/// on the wire may or may not have been counted server-side.
Agreement cross_check(const std::vector<ClientVerb>& client,
                      const ServerSnapshot& server_delta,
                      std::uint64_t transport_errors,
                      const XcheckTolerance& tolerance);

}  // namespace clktune::load
