// Campaigns: parameter sweeps over a base scenario, executed as one batch.
//
// A campaign document holds a base scenario plus sweep axes; the cross
// product of all axis values is expanded into a concrete scenario list
// (EffiTest-style circuits x variation settings evaluation grids).  Example:
//
//   {
//     "name": "paper_table1",
//     "base": { ... ScenarioSpec ... },
//     "sweep": {
//       "design.paper_circuit": ["s9234", "s13207"],
//       "clock.sigma_offset": [0, 1, 2],
//       "insertion.num_samples": [1000, 10000]
//     },
//     "threads": 0,
//     "seed_stride": 1
//   }
//
// Sweep keys are dotted paths into the scenario document; each expanded
// scenario gets a deterministic name suffix and (via seed_stride) a
// deterministic, distinct sample seed, so campaign results are reproducible
// bit for bit regardless of how many worker threads execute them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "util/json.h"

namespace clktune::scenario {

/// One sweep axis: dotted scenario path + the values it takes.
struct SweepAxis {
  std::string path;
  std::vector<util::Json> values;
};

struct CampaignSpec {
  std::string name = "campaign";
  util::Json base = util::Json::object();  ///< base scenario document
  std::vector<SweepAxis> axes;             ///< in declaration order
  /// Worker threads across scenarios; 0 = hardware concurrency.
  int threads = 0;
  /// Each expanded scenario i gets sample_seed += i * seed_stride (0 keeps
  /// every scenario on the base seed).
  std::uint64_t seed_stride = 1;

  static CampaignSpec from_json(const util::Json& j);
  util::Json to_json() const;

  /// Number of scenarios the sweep expands to (product of axis sizes);
  /// throws util::JsonError above 100000.  O(#axes).
  std::size_t expansion_size() const;

  /// Cross-product expansion into validated scenario specs.  Throws
  /// util::JsonError when an axis path is unknown or a combination fails
  /// ScenarioSpec validation.  An explicit "insertion.sample_seed" sweep
  /// axis overrides the seed_stride policy.
  std::vector<ScenarioSpec> expand() const;
};

struct CampaignSummary {
  std::string name;
  std::vector<ScenarioResult> results;  ///< shard cells, in expansion order
  std::uint64_t scenarios_run = 0;
  std::uint64_t targets_missed = 0;
  /// Cells served from the result cache (subset of scenarios_run).  Not
  /// serialised: a warm summary must stay byte-identical to a cold one.
  std::uint64_t scenarios_cached = 0;
  /// Which slice of the expansion this summary covers (i of n); recorded in
  /// the JSON when sharded so partial summaries are self-describing.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  double total_seconds = 0.0;  ///< wall clock of the whole batch

  /// Deterministic (timing-free) by default.
  util::Json to_json(bool include_timing = false) const;

  /// Rederives scenarios_run and targets_missed from the cells — the one
  /// place those counters are defined; every producer (local execution,
  /// remote reassembly, shard merge, from_json) calls this instead of
  /// counting by hand.  scenarios_cached is left alone: it is execution
  /// provenance, not derivable from the cells.
  void recount();

  /// Rebuilds a summary from a serialised artifact (a `clktune sweep`
  /// output file).  Round-trip safe for deterministic artifacts:
  /// from_json(s.to_json()).to_json() reproduces the original bytes —
  /// the aggregate block is recomputed from the cells, and cells round
  /// trip via ScenarioResult.  Backs `clktune report --merge` and the
  /// remote execution backend.  Throws util::JsonError on shape errors.
  static CampaignSummary from_json(const util::Json& j);
};

// Campaign execution lives in the exec layer: exec::LocalExecutor expands
// and runs a CampaignSpec (optionally cached / sharded), and
// exec::merge_shard_summaries reassembles shard summaries.

}  // namespace clktune::scenario
