file(REMOVE_RECURSE
  "CMakeFiles/post_silicon_config.dir/examples/post_silicon_config.cpp.o"
  "CMakeFiles/post_silicon_config.dir/examples/post_silicon_config.cpp.o.d"
  "post_silicon_config"
  "post_silicon_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/post_silicon_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
