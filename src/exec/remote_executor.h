// Remote backend: a `clktune serve` daemon behind the Executor interface.
//
// The request's resolved document travels over the NDJSON serve protocol
// (`{"cmd":"run"|"sweep","doc":{...}[,"shard":{...}]}`); streamed "result"
// events become Observer cells, and the reassembled artifacts — which
// round-trip byte-exactly — rebuild the same ScenarioResult /
// CampaignSummary a LocalExecutor would have produced.  A shard slice is
// forwarded to the daemon, so ShardedExecutor over several RemoteExecutors
// fans one campaign out across daemons.
#pragma once

#include <cstdint>
#include <string>

#include "exec/executor.h"
#include "serve/client.h"

namespace clktune::exec {

class RemoteExecutor : public Executor {
 public:
  /// `timeouts` bounds the connect attempt and the gap between response
  /// bytes (0 = block indefinitely); an expired deadline surfaces as an
  /// ExecError naming the daemon and the timeout instead of a hang.
  RemoteExecutor(std::string host, std::uint16_t port,
                 serve::SubmitOptions timeouts = {})
      : host_(std::move(host)), port_(port), timeouts_(timeouts) {}

  /// Submits the request and streams until the terminal event.  The
  /// request's cache pointer is ignored — the daemon owns its own cache.
  /// Throws ExecError when the daemon reports an error, closes the
  /// connection early, cannot be reached, or misses a deadline.
  Outcome execute(const Request& request,
                  Observer* observer = nullptr) override;

  std::string name() const override {
    return "remote(" + host_ + ":" + std::to_string(port_) + ")";
  }

 private:
  std::string host_;
  std::uint16_t port_;
  serve::SubmitOptions timeouts_;
};

}  // namespace clktune::exec
