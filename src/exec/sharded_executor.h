// Fan-out backend: one campaign split across N child executors.
//
// Child k receives the same request restricted to the `--shard k/N`
// expansion slice; the N shard summaries are merged back in expansion
// order (exec::merge_shard_summaries), so the outcome is byte-identical to
// an unsharded run of the whole campaign.  Children run concurrently on
// their own threads; with RemoteExecutor children this is the multi-daemon
// cross-host fan-out, with LocalExecutor children an in-process test rig
// for the shard/merge path.
#pragma once

#include <memory>
#include <vector>

#include "exec/executor.h"

namespace clktune::exec {

class ShardedExecutor : public Executor {
 public:
  /// Takes ownership of at least one child; child k runs shard k/N.
  explicit ShardedExecutor(std::vector<std::unique_ptr<Executor>> children);

  /// A campaign request fans out and merges; a scenario request (a single
  /// cell — nothing to split) delegates to child 0.  The request must not
  /// itself carry a shard slice.  Observer events stream from all children
  /// concurrently, tagged with global expansion indices.
  Outcome execute(const Request& request,
                  Observer* observer = nullptr) override;

  std::string name() const override;

 private:
  std::vector<std::unique_ptr<Executor>> children_;
};

}  // namespace clktune::exec
