#include "jobs/job_store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <random>
#include <system_error>

#include "util/fs.h"
#include "util/sha256.h"

namespace clktune::jobs {

using util::Json;

namespace {

/// Wall-clock (system_clock) on purpose: created_ms/updated_ms are
/// *display timestamps* persisted in job envelopes and shown to humans —
/// they must mean calendar time across process restarts.  No duration is
/// ever derived from them; every duration metric in the codebase comes
/// from steady_clock (util::Stopwatch, obs::steady_now_ns).
std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// 8 lowercase hex characters of entropy.  Uniqueness, not secrecy: two
/// submissions of the same document must get distinct ids, including
/// across daemon restarts (a counter alone would repeat after recovery).
std::string nonce8() {
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t mix = std::chrono::steady_clock::now()
                          .time_since_epoch()
                          .count();
  mix ^= static_cast<std::uint64_t>(::getpid()) << 32;
  mix ^= counter.fetch_add(0x9e3779b97f4a7c15ull);
  try {
    std::random_device entropy;
    mix ^= static_cast<std::uint64_t>(entropy()) << 16;
  } catch (const std::exception&) {
    // A clock-and-counter nonce still satisfies uniqueness.
  }
  // splitmix64 finaliser: spreads the mixed bits over the whole word.
  mix ^= mix >> 30;
  mix *= 0xbf58476d1ce4e5b9ull;
  mix ^= mix >> 27;
  mix *= 0x94d049bb133111ebull;
  mix ^= mix >> 31;
  char hex[9];
  std::snprintf(hex, sizeof(hex), "%08llx",
                static_cast<unsigned long long>(mix & 0xffffffffull));
  return hex;
}

/// Content hash of what the job runs: the canonical resolved document
/// salted with the selection, so the same sweep with different work-unit
/// indices hashes differently.
std::string content_hash12(const Json& doc,
                           const std::vector<std::size_t>& indices) {
  util::Sha256 hasher;
  hasher.update(util::canonical_dump(doc));
  for (const std::size_t index : indices) {
    hasher.update(":");
    hasher.update(std::to_string(index));
  }
  return hasher.hex_digest().substr(0, 12);
}

}  // namespace

JobStore::JobStore(std::string directory) : directory_(std::move(directory)) {
  if (!directory_.empty()) std::filesystem::create_directories(directory_);
}

void JobStore::persist_locked(const JobRecord& rec) const {
  if (directory_.empty()) return;
  // Crash-durable commit (tmp + fsync + rename + directory fsync): an
  // accepted submission or a recorded checkpoint must survive power loss,
  // not just a process kill.  A daemon killed mid-write leaves either the
  // previous envelope or the new one, never a torn file through the final
  // path (which load() would skip, losing the job).
  std::string payload = rec.to_json().dump(-1);
  payload.push_back('\n');
  util::write_file_atomic(directory_ + "/" + rec.id + ".json", payload,
                          /*durable=*/true, /*fault_site=*/"jobstore");
}

void JobStore::unlink_locked(const JobRecord& rec) const {
  if (directory_.empty()) return;
  std::error_code ec;
  std::filesystem::remove(directory_ + "/" + rec.id + ".json", ec);
}

std::size_t JobStore::load() {
  if (directory_.empty()) return 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".json") continue;  // temp files etc.
    JobRecord rec;
    try {
      rec = JobRecord::from_json(util::read_json_file(entry.path().string()));
    } catch (const std::exception&) {
      continue;  // torn write, foreign file or future schema: skip
    }
    // A job caught mid-flight by the crash re-enters the queue; its
    // checkpointed cells replay from the result cache, so only the
    // unfinished remainder actually recomputes.
    if (rec.state == JobState::preparing || rec.state == JobState::running) {
      rec.state = JobState::queued;
      rec.updated_ms = now_ms();
      persist_locked(rec);
    }
    next_seq_ = std::max(next_seq_, rec.seq + 1);
    jobs_[rec.id] = std::move(rec);
  }
  return jobs_.size();
}

JobRecord JobStore::create(util::Json doc, std::string kind, std::string name,
                           std::vector<std::size_t> indices,
                           std::size_t cells_total) {
  const std::lock_guard<std::mutex> lock(mutex_);
  JobRecord rec;
  rec.doc = std::move(doc);
  rec.kind = std::move(kind);
  rec.name = std::move(name);
  rec.indices = std::move(indices);
  rec.cells_total = cells_total;
  const std::string prefix = content_hash12(rec.doc, rec.indices);
  do {
    rec.id = prefix + "-" + nonce8();
  } while (jobs_.count(rec.id) != 0);
  rec.seq = next_seq_++;
  rec.created_ms = now_ms();
  rec.updated_ms = rec.created_ms;
  persist_locked(rec);
  return jobs_.emplace(rec.id, rec).first->second;
}

std::optional<JobRecord> JobStore::get(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

std::vector<JobRecord> JobStore::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobRecord> all;
  all.reserve(jobs_.size());
  for (const auto& [id, rec] : jobs_) all.push_back(rec);
  std::sort(all.begin(), all.end(),
            [](const JobRecord& a, const JobRecord& b) { return a.seq < b.seq; });
  return all;
}

std::optional<JobRecord> JobStore::claim_next() {
  const std::lock_guard<std::mutex> lock(mutex_);
  JobRecord* oldest = nullptr;
  for (auto& [id, rec] : jobs_)
    if (rec.state == JobState::queued &&
        (oldest == nullptr || rec.seq < oldest->seq))
      oldest = &rec;
  if (oldest == nullptr) return std::nullopt;
  oldest->state = JobState::preparing;
  oldest->updated_ms = now_ms();
  persist_locked(*oldest);
  return *oldest;
}

JobRecord JobStore::set_state(const std::string& id, JobState state,
                              const std::string& error) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw JobError("unknown job id \"" + id + "\"");
  it->second.state = state;
  if (!error.empty()) it->second.error = error;
  it->second.updated_ms = now_ms();
  persist_locked(it->second);
  return it->second;
}

JobRecord JobStore::cancel_if_queued(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw JobError("unknown job id \"" + id + "\"");
  if (it->second.state == JobState::queued) {
    it->second.state = JobState::cancelled;
    it->second.updated_ms = now_ms();
    persist_locked(it->second);
  }
  return it->second;
}

JobRecord JobStore::record_cell(const std::string& id, std::size_t index,
                                bool cached, bool missed_target) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw JobError("unknown job id \"" + id + "\"");
  JobRecord& rec = it->second;
  const auto pos =
      std::lower_bound(rec.done_indices.begin(), rec.done_indices.end(), index);
  if (pos != rec.done_indices.end() && *pos == index) return rec;  // replayed
  rec.done_indices.insert(pos, index);
  rec.cached += cached ? 1 : 0;
  rec.targets_missed += missed_target ? 1 : 0;
  rec.updated_ms = now_ms();
  persist_locked(rec);
  return rec;
}

std::size_t JobStore::prune_terminal(std::size_t keep) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const JobRecord*> terminal;
  for (const auto& [id, rec] : jobs_)
    if (is_terminal(rec.state)) terminal.push_back(&rec);
  if (terminal.size() <= keep) return 0;
  std::sort(terminal.begin(), terminal.end(),
            [](const JobRecord* a, const JobRecord* b) {
              return a->seq < b->seq;
            });
  const std::size_t drop = terminal.size() - keep;
  std::vector<std::string> victims;
  victims.reserve(drop);
  for (std::size_t i = 0; i < drop; ++i) victims.push_back(terminal[i]->id);
  for (const std::string& id : victims) {
    unlink_locked(jobs_[id]);
    jobs_.erase(id);
  }
  return drop;
}

}  // namespace clktune::jobs
