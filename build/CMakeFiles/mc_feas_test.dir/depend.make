# Empty dependencies file for mc_feas_test.
# This may be replaced when dependencies are built.
