// Seeded synthetic sequential-circuit generator.
//
// The paper's evaluation uses ISCAS89 / TAU-2013 netlists mapped to an
// industrial library, with extra clock skews injected to create more
// critical paths.  Neither the mapped netlists nor the library are
// redistributable, so this generator builds circuits with the same external
// statistics (flip-flop count, gate count) and the structural properties
// the algorithm actually consumes:
//
//  * per-flip-flop input cones built as fanin trees with controlled logic
//    depth; cone sizes follow a heavy-tailed distribution so a small set of
//    deep cones concentrates timing criticality (what makes a handful of
//    tuning buffers effective);
//  * locality-biased source selection over a placement grid, so sequential
//    neighbours are physically close (Manhattan-distance grouping, Fig. 6,
//    is meaningful);
//  * a smooth sinusoidal clock-skew field plus white noise — the "added
//    clock skews"; smoothness keeps connected pairs hold-safe while distant
//    regions diverge, and gives nearby buffers correlated tuning;
//  * optional self-loop arcs (state registers), which tuning provably cannot
//    help and which therefore bound the reachable yield, as in real designs.
//
// Generation is a pure function of the spec (counter-based RNG).
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace clktune::netlist {

struct SyntheticSpec {
  std::string name = "synth";
  int num_flipflops = 100;
  int num_gates = 1000;
  std::uint64_t seed = 1;

  /// Mean number of distinct source flip-flops feeding one cone.
  double avg_sources = 2.6;
  /// Probability that a shallow cone includes its own flip-flop as a source.
  double self_loop_prob = 0.06;
  /// Fraction of criticality-seed (deep) cones that carry state feedback
  /// (a self-loop).  Clock tuning cannot shift a path that launches and
  /// captures at the same flip-flop, so such cones put a hard ceiling on
  /// reachable yield.  Off by default (the regional variation term already
  /// bounds rescued yield smoothly); exposed for ablation studies.
  double deep_self_loop_frac = 0.0;
  /// Log-normal sigma of cone sizes; larger -> heavier tail -> fewer,
  /// deeper critical cones.
  double cone_size_sigma = 0.85;
  /// Fraction of flip-flops whose cone is forced deep (criticality seeds).
  /// Keeping this around 1 % concentrates timing failures on a handful of
  /// flip-flops, which is what lets a small buffer count rescue most chips
  /// (the <1 %-of-ns buffer counts of Table I).
  double forced_deep_fraction = 0.006;
  int min_depth = 3;
  /// High enough that the log-normal tail differentiates cone depths
  /// instead of piling up at the cap (a pile-up smears criticality over
  /// dozens of flip-flops).
  int max_depth = 40;

  /// Clock-skew field amplitude as a fraction of the nominal period.
  /// Kept below the shortest-path hold margin of connected (nearby) pairs.
  /// This is the deterministic imbalance ("we added clock skews so that
  /// they have more critical paths") that buffers profitably cancel.
  double skew_amplitude_factor = 0.06;
  /// Additional white-noise skew sigma (ps).
  double skew_noise_ps = 1.5;
  /// Skew field wavelength as a multiple of the die extent; larger =
  /// smoother = smaller skew difference between neighbouring flip-flops.
  double skew_wavelength_factor = 3.0;

  /// Probability that an open fanin slot samples a primary input instead of
  /// a source flip-flop.
  double pi_tap_prob = 0.03;

  int num_primary_inputs = -1;   ///< default: ns/20 + 2
  int num_primary_outputs = -1;  ///< default: ns/10 + 2
};

/// Generates a finalized Design (netlist + placement + skew).
Design generate(const SyntheticSpec& spec);

}  // namespace clktune::netlist
