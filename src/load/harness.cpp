#include "load/harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <thread>

#include "bench/bench_report.h"
#include "obs/metrics.h"
#include "serve/client.h"

namespace clktune::load {

namespace {

using util::Json;

/// The serve verbs a load client exercises; fixed so the per-verb
/// histograms are plain arrays with no locking on the record path.
constexpr const char* kVerbs[] = {"run", "sweep", "status", "submit",
                                 "attach"};
constexpr std::size_t kVerbCount = sizeof(kVerbs) / sizeof(kVerbs[0]);
constexpr std::size_t kRun = 0, kSweep = 1, kStatus = 2, kSubmit = 3,
                      kAttach = 4;

/// Duration-mode runs loop around a schedule of this many operations;
/// fresh-document indices advance by the schedule's fresh count per lap,
/// so wrapped laps still submit never-seen documents.
constexpr std::size_t kScheduleChunk = 4096;

bool is_busy_frame(const Json& final_event) {
  const Json* code = final_event.find("code");
  return code != nullptr && code->is_string() &&
         code->as_string() == "busy";
}

enum class Status { ok, busy, error_frame, transport };

/// Shared run state: counters are relaxed atomics, histograms are
/// obs::Histogram (thread-sharded, lock-free recording).
struct RunState {
  obs::Histogram verb_latency[kVerbCount];
  std::atomic<std::uint64_t> ops{0}, ok{0}, busy{0}, errors{0},
      transport{0};
};

class Worker {
 public:
  Worker(const LoadOptions& options, const std::vector<Op>& schedule,
         std::uint64_t schedule_fresh, const Json& base_doc,
         const Json& sweep_doc, std::atomic<std::uint64_t>& next_op,
         std::uint64_t budget, std::uint64_t deadline_ns,
         std::uint64_t start_ns, RunState& state)
      : options_(options),
        schedule_(schedule),
        schedule_fresh_(schedule_fresh),
        base_doc_(base_doc),
        sweep_doc_(sweep_doc),
        next_op_(next_op),
        budget_(budget),
        deadline_ns_(deadline_ns),
        start_ns_(start_ns),
        state_(state) {}

  void run() {
    while (true) {
      const std::uint64_t g = next_op_.fetch_add(1);
      if (g >= budget_) return;
      std::uint64_t arrival_lag_ns = 0;
      if (options_.rate > 0.0) {
        // Open loop: operation g is due at g/rate; latency counts from
        // the due time, so a saturated pool shows up as queueing delay.
        const auto due_ns =
            start_ns_ + static_cast<std::uint64_t>(
                            1e9 * static_cast<double>(g) / options_.rate);
        if (deadline_ns_ != 0 && due_ns >= deadline_ns_) return;
        std::uint64_t now = obs::steady_now_ns();
        if (now < due_ns) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(due_ns - now));
          now = obs::steady_now_ns();
        }
        arrival_lag_ns = now > due_ns ? now - due_ns : 0;
      } else if (deadline_ns_ != 0 &&
                 obs::steady_now_ns() >= deadline_ns_) {
        return;
      }
      const Op& op = schedule_[g % schedule_.size()];
      const std::uint64_t epoch = g / schedule_.size();
      execute(op, epoch * schedule_fresh_ + op.fresh_ordinal,
              arrival_lag_ns);
    }
  }

 private:
  const fleet::FleetMember& target(const Op& op) const {
    return options_.targets.members[op.target];
  }

  serve::SubmitOptions timeouts() const {
    serve::SubmitOptions t;
    t.connect_timeout_ms = options_.connect_timeout_ms;
    t.io_timeout_ms = options_.io_timeout_ms;
    return t;
  }

  /// One request/response exchange, timed end to end (connect included).
  /// Records into the verb histogram for every exchange the server also
  /// counted — a busy frame is rejected before the request line is read,
  /// so it stays out; an error frame is a served request, so it counts.
  Status exchange(const fleet::FleetMember& member, const Json& wire,
                  std::size_t verb, std::uint64_t extra_ns,
                  serve::SubmitOutcome* outcome_out = nullptr) {
    const std::uint64_t t0 = obs::steady_now_ns();
    serve::SubmitOutcome outcome;
    bool transport_failed = false;
    try {
      outcome = serve::submit_raw(member.host, member.port, wire, {},
                                  timeouts());
    } catch (const std::exception&) {
      transport_failed = true;
    }
    const std::uint64_t elapsed =
        obs::steady_now_ns() - t0 + extra_ns;
    if (transport_failed) return Status::transport;
    const Json* event = outcome.final_event.find("event");
    if (event == nullptr) return Status::transport;  // EOF mid-stream
    if (is_busy_frame(outcome.final_event)) return Status::busy;
    state_.verb_latency[verb].record(elapsed);
    if (outcome_out != nullptr) *outcome_out = std::move(outcome);
    return event->as_string() == "error" ? Status::error_frame : Status::ok;
  }

  Status run_scenario(const Op& op, std::uint64_t fresh_index,
                      std::uint64_t extra_ns) {
    Json wire = Json::object();
    wire.set("cmd", "run");
    wire.set("doc", op.kind == OpKind::run_fresh
                        ? fresh_scenario(base_doc_, fresh_index)
                        : base_doc_);
    return exchange(target(op), wire, kRun, extra_ns);
  }

  Status run_sweep(const Op& op, std::uint64_t extra_ns) {
    Json wire = Json::object();
    wire.set("cmd", "sweep");
    wire.set("doc", sweep_doc_);
    return exchange(target(op), wire, kSweep, extra_ns);
  }

  Status run_status(const Op& op, std::uint64_t extra_ns) {
    Json wire = Json::object();
    wire.set("cmd", "status");
    return exchange(target(op), wire, kStatus, extra_ns);
  }

  /// The detached lifecycle: submit --detach, poll status, attach.  Each
  /// phase is timed under its own verb, exactly as the server counts it.
  /// The poll loop is deadline-bounded so a wedged job can never hang a
  /// load client — it becomes an error instead.
  Status run_job_flow(const Op& op, std::uint64_t fresh_index,
                      std::uint64_t extra_ns) {
    Json submit_wire = Json::object();
    submit_wire.set("cmd", "submit");
    submit_wire.set("doc", fresh_scenario(base_doc_, fresh_index));
    serve::SubmitOutcome submitted;
    const Status submit_status =
        exchange(target(op), submit_wire, kSubmit, extra_ns, &submitted);
    if (submit_status != Status::ok) return submit_status;
    const Json* event = submitted.final_event.find("event");
    if (event == nullptr || event->as_string() != "job")
      return Status::error_frame;
    const std::string id = submitted.final_event.at("id").as_string();

    const int poll_budget_ms =
        options_.io_timeout_ms > 0 ? options_.io_timeout_ms : 30000;
    const std::uint64_t poll_deadline =
        obs::steady_now_ns() +
        static_cast<std::uint64_t>(poll_budget_ms) * 1000000ULL;
    while (true) {
      Json status_wire = Json::object();
      status_wire.set("cmd", "status");
      status_wire.set("id", id);
      serve::SubmitOutcome polled;
      const Status poll_status =
          exchange(target(op), status_wire, kStatus, 0, &polled);
      if (poll_status == Status::transport) return poll_status;
      if (poll_status == Status::ok) {
        const std::string state =
            polled.final_event.at("state").as_string();
        if (state == "done") break;
        if (state == "failed" || state == "cancelled")
          return Status::error_frame;
      }
      if (obs::steady_now_ns() >= poll_deadline)
        return Status::error_frame;  // job never finished in budget
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    Json attach_wire = Json::object();
    attach_wire.set("cmd", "attach");
    attach_wire.set("id", id);
    return exchange(target(op), attach_wire, kAttach, 0);
  }

  void execute(const Op& op, std::uint64_t fresh_index,
               std::uint64_t extra_ns) {
    Status status = Status::error_frame;
    switch (op.kind) {
      case OpKind::run_warm:
      case OpKind::run_fresh:
        status = run_scenario(op, fresh_index, extra_ns);
        break;
      case OpKind::sweep:
        status = run_sweep(op, extra_ns);
        break;
      case OpKind::status_probe:
        status = run_status(op, extra_ns);
        break;
      case OpKind::job_flow:
        status = run_job_flow(op, fresh_index, extra_ns);
        break;
    }
    state_.ops.fetch_add(1, std::memory_order_relaxed);
    switch (status) {
      case Status::ok:
        state_.ok.fetch_add(1, std::memory_order_relaxed);
        break;
      case Status::busy:
        state_.busy.fetch_add(1, std::memory_order_relaxed);
        break;
      case Status::transport:
        state_.transport.fetch_add(1, std::memory_order_relaxed);
        [[fallthrough]];
      case Status::error_frame:
        state_.errors.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }

  const LoadOptions& options_;
  const std::vector<Op>& schedule_;
  const std::uint64_t schedule_fresh_;
  const Json& base_doc_;
  const Json& sweep_doc_;
  std::atomic<std::uint64_t>& next_op_;
  const std::uint64_t budget_;
  const std::uint64_t deadline_ns_;
  const std::uint64_t start_ns_;
  RunState& state_;
};

/// Pre/post metrics fetch with bounded retries — under an armed chaos
/// plan a fetch can eat an injected reset, and the stamp (and the
/// cross-check baseline) is worth a few attempts.
bool try_fetch_snapshot(const fleet::FleetSpec& targets,
                        const serve::SubmitOptions& timeouts,
                        ServerSnapshot& out, std::string& error) {
  for (int attempt = 0; attempt < 5; ++attempt) {
    try {
      out = fetch_server_snapshot(targets, timeouts);
      return true;
    } catch (const std::exception& e) {
      error = e.what();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

}  // namespace

LoadResult run_load(const LoadOptions& options) {
  if (options.targets.members.empty())
    throw std::invalid_argument("run_load: no targets");
  if (options.clients == 0)
    throw std::invalid_argument("run_load: clients must be >= 1");

  serve::SubmitOptions timeouts;
  timeouts.connect_timeout_ms = options.connect_timeout_ms;
  timeouts.io_timeout_ms =
      options.io_timeout_ms > 0 ? options.io_timeout_ms : 30000;

  // Pre-flight: every target must answer the metrics verb before any
  // load is generated — an unreachable daemon is "nothing measured"
  // (exit 2), not a 100% error rate.  Doubles as the cross-check's
  // before-snapshot.
  ServerSnapshot before;
  {
    std::string error;
    if (!try_fetch_snapshot(options.targets, timeouts, before, error))
      throw std::runtime_error("pre-flight metrics probe failed: " + error);
  }

  // The artifact's wall clock starts here — it measures the load run,
  // not target resolution or the pre-flight.
  bench::BenchReport report("load");

  const Json base_doc = options.base_doc.is_object()
                            ? options.base_doc
                            : default_base_scenario();
  const Json sweep_doc = sweep_campaign(base_doc);

  std::vector<std::size_t> target_weights;
  for (const fleet::FleetMember& member : options.targets.members)
    target_weights.push_back(member.weight);

  const bool budgeted = options.requests > 0;
  double duration = options.duration_seconds;
  if (!budgeted && duration <= 0.0) duration = 5.0;
  const std::size_t schedule_size =
      budgeted ? static_cast<std::size_t>(
                     std::min<std::uint64_t>(options.requests,
                                             kScheduleChunk))
               : kScheduleChunk;
  const std::vector<Op> schedule = make_schedule(
      options.mix, options.seed, schedule_size, target_weights);
  const std::uint64_t schedule_fresh = fresh_ops(schedule);

  RunState state;
  std::atomic<std::uint64_t> next_op{0};
  const std::uint64_t start_ns = obs::steady_now_ns();
  const std::uint64_t deadline_ns =
      budgeted ? 0
               : start_ns + static_cast<std::uint64_t>(duration * 1e9);
  const std::uint64_t budget =
      budgeted ? options.requests
               : std::numeric_limits<std::uint64_t>::max();

  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (std::size_t c = 0; c < options.clients; ++c)
    clients.emplace_back([&] {
      Worker worker(options, schedule, schedule_fresh, base_doc, sweep_doc,
                    next_op, budget, deadline_ns, start_ns, state);
      worker.run();
    });
  for (std::thread& client : clients) client.join();
  const double wall =
      static_cast<double>(obs::steady_now_ns() - start_ns) * 1e-9;

  LoadResult result;
  result.ops = state.ops.load();
  result.ok = state.ok.load();
  result.busy = state.busy.load();
  result.errors = state.errors.load();
  result.transport_errors = state.transport.load();
  result.wall_seconds = wall;
  for (std::size_t v = 0; v < kVerbCount; ++v) {
    const obs::Histogram::Snapshot snapshot =
        state.verb_latency[v].snapshot(1e-9);
    if (snapshot.count() == 0) continue;
    VerbObservation observation;
    observation.verb = kVerbs[v];
    observation.count = snapshot.count();
    observation.p50 = snapshot.quantile(0.5);
    observation.p90 = snapshot.quantile(0.9);
    observation.p99 = snapshot.quantile(0.99);
    observation.mean =
        snapshot.sum() / static_cast<double>(snapshot.count());
    result.verbs.push_back(observation);
  }

  // Post-run snapshot: always attempted — the faults_injected stamp must
  // survive even a --no-xcheck chaos run — but only the cross-check turns
  // a failed fetch into a failed gate.
  //
  // The server's latency histogram records when the handler *returns*,
  // which is after the final event was sent — so the last exchanges of the
  // run can still be mid-record when the first snapshot lands.  The
  // counters are monotonic: refetch until every client-observed verb has
  // settled (or the settle budget runs out, and the count rule reports
  // the real discrepancy).
  ServerSnapshot after;
  std::string fetch_error;
  result.server_metrics_available =
      try_fetch_snapshot(options.targets, timeouts, after, fetch_error);
  for (int settle = 0; result.server_metrics_available && settle < 20;
       ++settle) {
    const ServerSnapshot probe = ServerSnapshot::delta(before, after);
    bool settled = true;
    for (const VerbObservation& observation : result.verbs) {
      const auto it = probe.verb_latency.find(observation.verb);
      const std::uint64_t seen =
          it == probe.verb_latency.end() ? 0 : it->second.count();
      const std::uint64_t expected =
          observation.count > result.transport_errors
              ? observation.count - result.transport_errors
              : 0;
      if (seen < expected) settled = false;
    }
    if (settled) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    result.server_metrics_available =
        try_fetch_snapshot(options.targets, timeouts, after, fetch_error);
  }
  if (result.server_metrics_available) {
    const ServerSnapshot delta = ServerSnapshot::delta(before, after);
    result.server_busy_rejections = delta.busy_rejections;
    result.server_faults_injected = delta.faults_injected;
    if (options.cross_check) {
      std::vector<ClientVerb> client_verbs;
      for (const VerbObservation& observation : result.verbs) {
        ClientVerb verb;
        verb.verb = observation.verb;
        verb.count = observation.count;
        verb.p50 = observation.p50;
        verb.p90 = observation.p90;
        verb.p99 = observation.p99;
        client_verbs.push_back(verb);
      }
      result.agreement = cross_check(client_verbs, delta,
                                     result.transport_errors,
                                     options.xcheck);
    }
  } else if (options.cross_check) {
    result.agreement.ok = false;
    VerbAgreement verdict;
    verdict.ok = false;
    verdict.note = "post-run metrics fetch failed: " + fetch_error;
    result.agreement.verbs.push_back(verdict);
  }

  // Gates.
  if (options.max_error_rate < 1.0 &&
      result.error_rate() > options.max_error_rate) {
    result.gates_ok = false;
    char diagnostic[128];
    std::snprintf(diagnostic, sizeof(diagnostic),
                  "error rate %.4f exceeds --max-error-rate %.4f",
                  result.error_rate(), options.max_error_rate);
    result.gate_failures.push_back(diagnostic);
  }
  if (options.cross_check && !result.agreement.ok) {
    result.gates_ok = false;
    result.gate_failures.push_back(
        "client/server latency histograms disagree");
  }

  // The gate-ready artifact: BenchReport supplies wall clock, provenance
  // and the faults_injected guard; the flat p50/p99/throughput/rate
  // members are what bench/baselines/gate.conf holds the trajectory on.
  report.count_samples(result.ops);
  report.override_samples_per_sec(result.throughput_rps());
  report.count_external_faults(result.server_faults_injected);
  report.metric("requests", static_cast<double>(result.ops));
  report.metric("throughput_rps", result.throughput_rps());
  report.metric("ok", static_cast<double>(result.ok));
  report.metric("busy", static_cast<double>(result.busy));
  report.metric("errors", static_cast<double>(result.errors));
  report.metric("transport_errors",
                static_cast<double>(result.transport_errors));
  report.metric("busy_rate", result.busy_rate());
  report.metric("error_rate", result.error_rate());
  for (const VerbObservation& observation : result.verbs) {
    report.metric("p50_" + observation.verb + "_seconds", observation.p50);
    report.metric("p99_" + observation.verb + "_seconds", observation.p99);
  }
  {
    Json verbs = Json::object();
    for (const VerbObservation& observation : result.verbs) {
      Json detail = Json::object();
      detail.set("count", observation.count);
      detail.set("p50_seconds", observation.p50);
      detail.set("p90_seconds", observation.p90);
      detail.set("p99_seconds", observation.p99);
      detail.set("mean_seconds", observation.mean);
      verbs.set(observation.verb, std::move(detail));
    }
    report.metric_json("verbs", std::move(verbs));

    Json server = Json::object();
    server.set("metrics_available", result.server_metrics_available);
    server.set("busy_rejections", result.server_busy_rejections);
    server.set("faults_injected", result.server_faults_injected);
    report.metric_json("server", std::move(server));

    if (options.cross_check)
      report.metric_json("agreement", result.agreement.to_json());

    Json workload = Json::object();
    workload.set("seed", options.seed);
    workload.set("clients", static_cast<std::uint64_t>(options.clients));
    workload.set("mode", options.rate > 0.0 ? "open" : "closed");
    if (options.rate > 0.0) workload.set("rate_rps", options.rate);
    if (budgeted)
      workload.set("requests_budget", options.requests);
    else
      workload.set("duration_seconds", duration);
    workload.set("mix", options.mix.to_json());
    Json targets = Json::array();
    for (const fleet::FleetMember& member : options.targets.members)
      targets.push_back(member.endpoint());
    workload.set("targets", std::move(targets));
    report.metric_json("workload", std::move(workload));
  }
  result.bench_artifact = report.to_json();
  return result;
}

}  // namespace clktune::load
