#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/baselines.h"
#include "core/engine.h"
#include "core/report.h"
#include "feas/yield_eval.h"
#include "mc/period_mc.h"
#include "netlist/generator.h"
#include "netlist/nominal_sta.h"
#include "ssta/seq_graph.h"

namespace clktune::core {
namespace {

struct Fixture {
  netlist::Design design;
  ssta::SeqGraph graph;
  mc::PeriodStats period;

  explicit Fixture(int ns = 120, int ng = 1000, std::uint64_t seed = 4242) {
    netlist::SyntheticSpec spec;
    spec.num_flipflops = ns;
    spec.num_gates = ng;
    spec.seed = seed;
    design = netlist::generate(spec);
    graph = ssta::extract_seq_graph(design);
    const mc::Sampler sampler(graph, 20160314);
    period = mc::sample_min_period(sampler, 2000);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

InsertionConfig fast_config() {
  InsertionConfig cfg;
  cfg.num_samples = 800;
  return cfg;
}

TEST(EngineTest, ImprovesYieldAtMuT) {
  const Fixture& f = fixture();
  const double t = f.period.mu();
  BufferInsertionEngine engine(f.design, f.graph, t, fast_config());
  const InsertionResult res = engine.run();

  const mc::Sampler eval(f.graph, 777);
  const feas::YieldResult before = feas::original_yield(f.graph, t, eval, 3000);
  const feas::YieldEvaluator evaluator(f.graph, res.plan, t);
  const feas::YieldResult after = evaluator.evaluate(eval, 3000);

  EXPECT_GT(after.yield, before.yield + 0.05)
      << "buffers must buy significant yield at muT";
  EXPECT_GT(res.plan.physical_buffers(), 0);
  // "less than 1 % of the flip-flops" is the paper's headline; allow 5 %
  // slack on the small test circuit.
  EXPECT_LT(res.plan.physical_buffers(), f.graph.num_ffs / 5);
}

TEST(EngineTest, NeverHurtsYield) {
  const Fixture& f = fixture();
  for (double mult : {1.0, 2.0}) {
    const double t = f.period.mu() + mult * f.period.sigma();
    BufferInsertionEngine engine(f.design, f.graph, t, fast_config());
    const InsertionResult res = engine.run();
    const mc::Sampler eval(f.graph, 778);
    const feas::YieldResult before =
        feas::original_yield(f.graph, t, eval, 2500);
    const feas::YieldEvaluator evaluator(f.graph, res.plan, t);
    const feas::YieldResult after = evaluator.evaluate(eval, 2500);
    EXPECT_GE(after.yield, before.yield - 1e-9) << "mult=" << mult;
  }
}

TEST(EngineTest, RangesAreReducedBelowMaximum) {
  const Fixture& f = fixture();
  BufferInsertionEngine engine(f.design, f.graph, f.period.mu(),
                               fast_config());
  const InsertionResult res = engine.run();
  ASSERT_FALSE(res.plan.empty());
  for (const feas::BufferWindow& b : res.plan.buffers) {
    EXPECT_LE(b.range(), fast_config().steps);
    EXPECT_LE(b.k_lo, 0);
    EXPECT_GE(b.k_hi, 0);
  }
  EXPECT_LE(res.plan.average_range(), fast_config().steps);
  EXPECT_GT(res.plan.average_range(), 0.0);
}

TEST(EngineTest, BufferWindowsLieInsideAssignedWindows) {
  const Fixture& f = fixture();
  BufferInsertionEngine engine(f.design, f.graph, f.period.mu(),
                               fast_config());
  const InsertionResult res = engine.run();
  for (const BufferInfo& info : res.buffers) {
    EXPECT_GE(info.range_lo, info.window_lo);
    EXPECT_LE(info.range_hi, info.window_hi);
    EXPECT_EQ(info.window_hi - info.window_lo, fast_config().steps);
    EXPECT_GT(info.usage_final, 0u);
  }
}

TEST(EngineTest, DeterministicAcrossThreadCounts) {
  const Fixture& f = fixture();
  InsertionConfig cfg = fast_config();
  cfg.num_samples = 300;
  cfg.threads = 1;
  BufferInsertionEngine e1(f.design, f.graph, f.period.mu(), cfg);
  const InsertionResult r1 = e1.run();
  cfg.threads = 8;
  BufferInsertionEngine e8(f.design, f.graph, f.period.mu(), cfg);
  const InsertionResult r8 = e8.run();
  ASSERT_EQ(r1.plan.buffers.size(), r8.plan.buffers.size());
  for (std::size_t i = 0; i < r1.plan.buffers.size(); ++i) {
    EXPECT_EQ(r1.plan.buffers[i].ff, r8.plan.buffers[i].ff);
    EXPECT_EQ(r1.plan.buffers[i].k_lo, r8.plan.buffers[i].k_lo);
    EXPECT_EQ(r1.plan.buffers[i].k_hi, r8.plan.buffers[i].k_hi);
  }
  EXPECT_EQ(r1.plan.group_of, r8.plan.group_of);
  EXPECT_EQ(r1.step1_usage, r8.step1_usage);
}

TEST(EngineTest, PruningReducesCandidates) {
  const Fixture& f = fixture();
  BufferInsertionEngine engine(f.design, f.graph, f.period.mu(),
                               fast_config());
  const InsertionResult res = engine.run();
  EXPECT_GT(res.pruned_count, 0);
  int kept = 0;
  for (char c : res.kept_after_prune) kept += c != 0;
  EXPECT_EQ(kept + res.pruned_count, f.graph.num_ffs);
  EXPECT_LT(kept, f.graph.num_ffs);
}

TEST(EngineTest, UsageCountsMatchHistograms) {
  const Fixture& f = fixture();
  BufferInsertionEngine engine(f.design, f.graph, f.period.mu(),
                               fast_config());
  const InsertionResult res = engine.run();
  for (int ff = 0; ff < f.graph.num_ffs; ++ff) {
    const auto fs = static_cast<std::size_t>(ff);
    EXPECT_EQ(res.hist_step1_conc[fs].total(), res.step1_usage[fs]);
  }
}

TEST(EngineTest, ConcentrationShrinksTotalTuningMass) {
  // Per sample, the concentration ILP minimises sum|x| subject to the same
  // count bound the min-count solution satisfies, so the aggregate tuning
  // mass over all samples and buffers can only shrink (III-A3 / Fig. 5b).
  const Fixture& f = fixture();
  BufferInsertionEngine engine(f.design, f.graph, f.period.mu(),
                               fast_config());
  const InsertionResult res = engine.run();
  auto mass = [](const std::vector<util::IntHistogram>& hists) {
    double m = 0.0;
    for (const auto& h : hists)
      for (const auto& [k, c] : h.cells())
        m += std::abs(k) * static_cast<double>(c);
    return m;
  };
  const double raw = mass(res.hist_step1_min);
  const double conc = mass(res.hist_step1_conc);
  ASSERT_GT(raw, 0.0);
  EXPECT_LE(conc, raw + 1e-9);
  EXPECT_LT(conc, 0.9 * raw);  // and meaningfully so, not just ties
}

TEST(EngineTest, GroupingNeverIncreasesBufferCount) {
  const Fixture& f = fixture();
  InsertionConfig cfg = fast_config();
  cfg.enable_grouping = false;
  BufferInsertionEngine e_plain(f.design, f.graph, f.period.mu(), cfg);
  const InsertionResult plain = e_plain.run();
  cfg.enable_grouping = true;
  BufferInsertionEngine e_grouped(f.design, f.graph, f.period.mu(), cfg);
  const InsertionResult grouped = e_grouped.run();
  EXPECT_EQ(plain.plan.buffers.size(), grouped.plan.buffers.size());
  EXPECT_LE(grouped.plan.physical_buffers(), plain.plan.physical_buffers());
}

TEST(EngineTest, MaxBuffersCapHonored) {
  const Fixture& f = fixture();
  InsertionConfig cfg = fast_config();
  cfg.max_buffers = 2;
  BufferInsertionEngine engine(f.design, f.graph, f.period.mu(), cfg);
  const InsertionResult res = engine.run();
  EXPECT_LE(res.plan.physical_buffers(), 2);
  EXPECT_EQ(res.buffers.size(), res.plan.buffers.size());
}

TEST(EngineTest, CorrelationMatrixIsSymmetricWithUnitDiagonal) {
  const Fixture& f = fixture();
  BufferInsertionEngine engine(f.design, f.graph, f.period.mu(),
                               fast_config());
  const InsertionResult res = engine.run();
  const auto& c = res.correlation;
  ASSERT_EQ(c.size(), res.plan.buffers.size());
  for (std::size_t a = 0; a < c.size(); ++a) {
    EXPECT_NEAR(c[a][a], 1.0, 1e-9);
    for (std::size_t b = 0; b < c.size(); ++b) {
      EXPECT_NEAR(c[a][b], c[b][a], 1e-12);
      EXPECT_LE(std::abs(c[a][b]), 1.0 + 1e-9);
    }
  }
}

TEST(EngineTest, LooserClockNeedsFewerBuffers) {
  const Fixture& f = fixture();
  BufferInsertionEngine tight(f.design, f.graph, f.period.mu(),
                              fast_config());
  BufferInsertionEngine loose(f.design, f.graph,
                              f.period.mu() + 2.0 * f.period.sigma(),
                              fast_config());
  const InsertionResult rt_ = tight.run();
  const InsertionResult rl = loose.run();
  EXPECT_LE(rl.plan.physical_buffers(), rt_.plan.physical_buffers());
}

TEST(EngineTest, TauDefaultsToEighthOfNominalPeriod) {
  const Fixture& f = fixture();
  BufferInsertionEngine engine(f.design, f.graph, f.period.mu(),
                               fast_config());
  const double t0 = netlist::nominal_min_period(f.design);
  EXPECT_NEAR(engine.tau_ps(), t0 / 8.0, 1e-9);
  EXPECT_NEAR(engine.step_ps(), t0 / 8.0 / fast_config().steps, 1e-9);
}

TEST(EngineTest, ProposedBeatsTopKBaselineAtEqualBudget) {
  const Fixture& f = fixture();
  const double t = f.period.mu();
  BufferInsertionEngine engine(f.design, f.graph, t, fast_config());
  const InsertionResult res = engine.run();
  ASSERT_GT(res.plan.physical_buffers(), 0);

  const mc::Sampler insert_sampler(f.graph, fast_config().sample_seed);
  const feas::TuningPlan topk = top_k_criticality_plan(
      f.graph, insert_sampler, t, fast_config().num_samples,
      res.plan.physical_buffers(), fast_config().steps, res.step_ps);

  const mc::Sampler eval(f.graph, 779);
  const feas::YieldEvaluator ours(f.graph, res.plan, t);
  const feas::YieldEvaluator theirs(f.graph, topk, t);
  const double y_ours = ours.evaluate(eval, 3000).yield;
  const double y_theirs = theirs.evaluate(eval, 3000).yield;
  // Equal budget: the proposed asymmetric-window flow should not lose by
  // more than noise, and typically wins.
  EXPECT_GE(y_ours, y_theirs - 0.02);
}

TEST(EngineTest, OracleBoundsProposedYield) {
  const Fixture& f = fixture();
  const double t = f.period.mu();
  BufferInsertionEngine engine(f.design, f.graph, t, fast_config());
  const InsertionResult res = engine.run();
  const feas::TuningPlan oracle =
      oracle_plan(f.graph, fast_config().steps, res.step_ps);
  const mc::Sampler eval(f.graph, 780);
  const double y_ours =
      feas::YieldEvaluator(f.graph, res.plan, t).evaluate(eval, 3000).yield;
  const double y_oracle =
      feas::YieldEvaluator(f.graph, oracle, t).evaluate(eval, 3000).yield;
  EXPECT_LE(y_ours, y_oracle + 0.02);
}

TEST(ReportTest, RowFormatting) {
  TableRow row;
  row.circuit = "s9234";
  row.ns = 211;
  row.ng = 5597;
  row.setting = "muT";
  row.clock_ps = 400.0;
  row.nb = 2;
  row.ab = 12.5;
  row.yield = 77.11;
  row.yield_original = 50.0;
  row.runtime_s = 54.2;
  const std::string line = format_row(row);
  EXPECT_NE(line.find("s9234"), std::string::npos);
  EXPECT_NE(line.find("Nb=2"), std::string::npos);
  EXPECT_NE(line.find("Yi=27.11"), std::string::npos);
  std::ostringstream table;
  print_table(table, {row});
  EXPECT_NE(table.str().find("Circuit"), std::string::npos);
  EXPECT_NE(table.str().find("77.11"), std::string::npos);
}

}  // namespace
}  // namespace clktune::core
