#include "obs/trace.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.h"

namespace clktune::obs {

namespace {

struct TraceState {
  std::mutex mutex;
  std::ofstream out;
  std::uint64_t epoch_ns = 0;
};

std::atomic<bool> g_enabled{false};

TraceState& state() {
  static TraceState instance;
  return instance;
}

/// Small dense tids (Chrome renders one row per tid); assigned on a
/// thread's first completed span.
std::uint64_t thread_trace_id() {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// JSON string escaping for span names (control chars, quote, backslash).
void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

bool trace_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void start_trace(const std::string& path) {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.out.close();
  s.out.clear();
  s.out.open(path, std::ios::binary | std::ios::trunc);
  if (!s.out)
    throw std::runtime_error("obs: cannot open trace file " + path);
  s.epoch_ns = steady_now_ns();
  g_enabled.store(true, std::memory_order_release);
}

void stop_trace() {
  g_enabled.store(false, std::memory_order_release);
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.out.is_open()) {
    s.out.flush();
    s.out.close();
  }
}

TraceSpan::TraceSpan(const char* name) {
  if (!trace_enabled()) return;
  name_ = name;
  start_ns_ = steady_now_ns();
  active_ = true;
}

TraceSpan::TraceSpan(const std::string& name) {
  if (!trace_enabled()) return;
  name_ = name;
  start_ns_ = steady_now_ns();
  active_ = true;
}

TraceSpan::~TraceSpan() {
  // A span that outlives stop_trace is dropped (the file is closed); one
  // that started before start_trace never armed.
  if (!active_ || !trace_enabled()) return;
  const std::uint64_t end_ns = steady_now_ns();
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.out.is_open()) return;
  // Clamp: a span straddling a re-start_trace() has an epoch newer than
  // its own start.
  const std::uint64_t rel_ns =
      start_ns_ > s.epoch_ns ? start_ns_ - s.epoch_ns : 0;
  const double ts_us = static_cast<double>(rel_ns) / 1000.0;
  const double dur_us = static_cast<double>(end_ns - start_ns_) / 1000.0;
  std::string line = "{\"name\":\"";
  append_escaped(line, name_);
  line += "\",\"cat\":\"clktune\",\"ph\":\"X\",\"ts\":";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ts_us);
  line += buf;
  line += ",\"dur\":";
  std::snprintf(buf, sizeof(buf), "%.3f", dur_us);
  line += buf;
  line += ",\"pid\":";
  line += std::to_string(static_cast<std::uint64_t>(::getpid()));
  line += ",\"tid\":";
  line += std::to_string(thread_trace_id());
  line += "}\n";
  s.out << line;
}

}  // namespace clktune::obs
