// Pool health aggregation behind `clktune fleet status`.
//
// probe_pool() makes one status round trip (plus a best-effort metrics
// fetch) per pool member, in parallel, and folds the answers into one
// PoolStatus: per-daemon liveness/uptime/load plus pool-wide totals of
// the key serve counters.  A member that refuses, times out or answers
// garbage is reported dead with its error — a partially-down pool still
// renders, which is the whole point of a health view.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fleet/fleet_spec.h"
#include "serve/client.h"
#include "util/json.h"

namespace clktune::fleet {

/// One member's probe outcome.  `status` is the daemon's status frame
/// verbatim (empty object when dead); `metrics` is its metrics snapshot
/// frame, best-effort (empty object when unavailable — an older daemon
/// without the verb still probes alive).
struct DaemonProbe {
  FleetMember member;
  bool alive = false;
  std::string error;
  util::Json status = util::Json::object();
  util::Json metrics = util::Json::object();

  util::Json to_json() const;
};

/// The aggregated pool view.
struct PoolStatus {
  std::vector<DaemonProbe> daemons;
  std::size_t alive = 0;
  std::size_t dead = 0;
  /// Sums over the alive members' status frames.
  std::uint64_t requests = 0;
  std::uint64_t scenarios_run = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t jobs_queued = 0;
  std::uint64_t jobs_running = 0;

  util::Json to_json() const;
};

/// Probes every member of `spec` in parallel and aggregates.
PoolStatus probe_pool(const FleetSpec& spec,
                      const serve::SubmitOptions& timeouts);

/// Renders the fixed-width table `clktune fleet status` prints: one row
/// per daemon (DAEMON/STATE/UPTIME/REQS/SCEN/HIT%/JOBS) plus a TOTAL row.
void render_pool_table(std::ostream& out, const PoolStatus& pool);

}  // namespace clktune::fleet
