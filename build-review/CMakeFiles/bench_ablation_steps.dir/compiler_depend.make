# Empty compiler generated dependencies file for bench_ablation_steps.
# This may be replaced when dependencies are built.
