// Reproduces the data behind Fig. 6: pairwise tuning correlation between
// inserted buffers, Manhattan distances, the resulting groups under
// r(i,j) >= 0.8 and d(i,j) <= 10 x pitch, and the yield cost of sharing one
// physical buffer per group.
#include <cstdio>

#include "bench_common.h"
#include "feas/yield_eval.h"

namespace {

using namespace clktune;

int run() {
  bench::BenchConfig cfg = bench::BenchConfig::from_env();
  bench::BenchReport report("fig6_grouping");
  auto spec = *netlist::paper_circuit_spec(
      util::env_string("CLKTUNE_FIG6_CIRCUIT", "ac97_ctrl"));
  const bench::PreparedCircuit pc = bench::prepare(spec, cfg);
  const double t = pc.setting_period(0);

  core::BufferInsertionEngine engine(pc.design, pc.graph, t, cfg.insertion());
  const core::InsertionResult res = engine.run();
  report.count_insertion(res, cfg.samples);
  const std::size_t nb = res.buffers.size();
  std::printf("Fig. 6 reproduction: circuit=%s T=%.1f ps, %zu buffers\n\n",
              spec.name.c_str(), t, nb);
  if (nb < 2) {
    std::printf("fewer than two buffers; grouping is trivial\n");
    return report.write();
  }

  std::printf("tuning correlation matrix (upper triangle, x100):\n      ");
  for (std::size_t j = 0; j < nb; ++j)
    std::printf("ff%-5d", res.buffers[j].ff);
  std::printf("\n");
  for (std::size_t i = 0; i < nb; ++i) {
    std::printf("ff%-4d", res.buffers[i].ff);
    for (std::size_t j = 0; j < nb; ++j) {
      if (j < i)
        std::printf("%7s", "");
      else
        std::printf("%7.0f", 100.0 * res.correlation[i][j]);
    }
    std::printf("\n");
  }

  const double dt = 10.0 * pc.design.ff_pitch;
  std::printf("\neligible pairs (r >= 0.80 and manhattan <= %.0f):\n", dt);
  for (std::size_t i = 0; i < nb; ++i) {
    for (std::size_t j = i + 1; j < nb; ++j) {
      const double r = res.correlation[i][j];
      const double d = netlist::manhattan(
          pc.design.ff_position[static_cast<std::size_t>(res.buffers[i].ff)],
          pc.design.ff_position[static_cast<std::size_t>(res.buffers[j].ff)]);
      if (r >= 0.8 || d <= dt)
        std::printf("  ff%d-ff%d: r=%.2f d=%.0f %s\n", res.buffers[i].ff,
                    res.buffers[j].ff, r, d,
                    r >= 0.8 && d <= dt ? "<- grouped" : "");
    }
  }

  std::printf("\ngroups (physical buffers):\n");
  for (int g = 0; g < res.plan.num_groups; ++g) {
    std::printf("  group %d:", g);
    for (std::size_t i = 0; i < nb; ++i)
      if (res.plan.group_of[i] == g) std::printf(" ff%d", res.buffers[i].ff);
    const feas::BufferWindow w = res.plan.group_window(g);
    std::printf("  window [%d, %d]\n", w.k_lo, w.k_hi);
  }
  std::printf("%zu buffers -> %d physical buffers after grouping\n", nb,
              res.plan.physical_buffers());

  // Yield with vs without sharing.
  const mc::Sampler eval(pc.graph, bench::kEvalSeed);
  feas::TuningPlan ungrouped = res.plan;
  ungrouped.reset_groups();
  const double y_grouped = feas::YieldEvaluator(pc.graph, res.plan, t)
                               .evaluate(eval, cfg.eval_samples, cfg.threads)
                               .yield;
  const double y_ungrouped =
      feas::YieldEvaluator(pc.graph, ungrouped, t)
          .evaluate(eval, cfg.eval_samples, cfg.threads)
          .yield;
  std::printf(
      "\nyield with individual buffers: %.2f%%, with shared (grouped) "
      "buffers: %.2f%% (cost %.2f%%)\n",
      100.0 * y_ungrouped, 100.0 * y_grouped,
      100.0 * (y_ungrouped - y_grouped));
  report.count_samples(2 * cfg.eval_samples);
  return report.write();
}

}  // namespace

int main() { return run(); }
