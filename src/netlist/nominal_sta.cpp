#include "netlist/nominal_sta.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace clktune::netlist {

double nominal_gate_delay(const Design& design, NodeId gate) {
  const Node& g = design.netlist.node(gate);
  const CellType& cell = design.library.cell(g.cell);
  const int extra_fanout =
      std::max(0, static_cast<int>(g.fanouts.size()) - 1);
  return cell.delay_ps + cell.load_ps * extra_fanout;
}

double nominal_gate_min_delay(const Design& design, NodeId gate) {
  const Node& g = design.netlist.node(gate);
  const CellType& cell = design.library.cell(g.cell);
  const int extra_fanout =
      std::max(0, static_cast<int>(g.fanouts.size()) - 1);
  return cell.min_delay_ps + 0.5 * cell.load_ps * extra_fanout;
}

double nominal_min_period(const Design& design) {
  const Netlist& nl = design.netlist;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> arrival(nl.num_nodes(), kNegInf);
  const double clkq =
      design.library.cell(design.library.dff_cell()).delay_ps;
  for (NodeId ff : nl.flipflops())
    arrival[static_cast<std::size_t>(ff)] = clkq;
  for (NodeId g : nl.topo_gates()) {
    double in = kNegInf;
    for (NodeId f : nl.node(g).fanins)
      in = std::max(in, arrival[static_cast<std::size_t>(f)]);
    if (in > kNegInf)
      arrival[static_cast<std::size_t>(g)] =
          in + nominal_gate_delay(design, g);
  }
  double period = 0.0;
  for (NodeId ff : nl.flipflops()) {
    const Node& node = nl.node(ff);
    if (node.fanins.empty()) continue;
    const double at = arrival[static_cast<std::size_t>(node.fanins[0])];
    if (at > kNegInf)
      period = std::max(period, at + design.library.setup_ps());
  }
  return period;
}

}  // namespace clktune::netlist
