#include "util/alloc_counter.h"

#include <cstdlib>
#include <new>

namespace {

thread_local std::uint64_t tls_alloc_count = 0;

// On exhaustion the allocating forms must run the new-handler loop
// ([new.delete.single]) before giving up, like the operators they replace.
void* counted_alloc(std::size_t size) {
  ++tls_alloc_count;
  if (size == 0) size = 1;
  for (;;) {
    void* p = std::malloc(size);
    if (p != nullptr) return p;
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  ++tls_alloc_count;
  if (size == 0) size = align;
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  for (;;) {
    void* p = std::aligned_alloc(align, rounded);
    if (p != nullptr) return p;
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

namespace clktune::util {

std::uint64_t alloc_count() noexcept { return tls_alloc_count; }

}  // namespace clktune::util

// Replacement global allocation functions (C++ [new.delete]).  Defined here
// so any binary referencing clktune::util::alloc_count() links them in.

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
