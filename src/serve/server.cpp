#include "serve/server.h"

#include <sys/socket.h>

#include <csignal>
#include <cstdio>
#include <exception>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "exec/local_executor.h"
#include "exec/observer.h"
#include "exec/request.h"
#include "jobs/job.h"
#include "jobs/job_scheduler.h"
#include "obs/metrics.h"
#include "scenario/campaign.h"
#include "scenario/scenario.h"
#include "util/json.h"

namespace clktune::serve {

using util::Json;

namespace {

/// Serve-layer admission metrics in the process-wide obs registry.
struct ServeMetrics {
  obs::Counter& connections;
  obs::Counter& busy;
  obs::Gauge& queue_depth;

  static ServeMetrics& get() {
    static ServeMetrics m{
        obs::Registry::global().counter(
            "clktune_serve_connections_total", "Connections accepted"),
        obs::Registry::global().counter(
            "clktune_serve_busy_rejections_total",
            "Connections rejected with the busy backpressure frame"),
        obs::Registry::global().gauge(
            "clktune_serve_queue_depth",
            "Accepted connections waiting for a handler"),
    };
    return m;
  }
};

/// Per-verb request counter + latency histogram.  Unknown cmd strings
/// collapse into one "other" label so a misbehaving client cannot grow
/// the registry without bound.
const std::string& verb_label(const std::string& cmd) {
  static const std::string known[] = {"run",     "sweep", "status",
                                      "metrics", "submit", "attach",
                                      "cancel",  "jobs",   "shutdown",
                                      "drain",   "prune"};
  static const std::string other = "other";
  for (const std::string& verb : known)
    if (verb == cmd) return verb;
  return other;
}

obs::Histogram& verb_latency(const std::string& verb) {
  return obs::Registry::global().histogram(
      "clktune_serve_request_seconds",
      "Request handling latency by verb", 1e-9, {{"verb", verb}});
}

obs::Counter& verb_requests(const std::string& verb) {
  return obs::Registry::global().counter(
      "clktune_serve_requests_total", "Requests handled by verb",
      {{"verb", verb}});
}

void send_event(const util::TcpSocket& connection, const Json& event) {
  util::tcp_write_all(connection, event.dump(-1) + "\n");
}

void send_error(const util::TcpSocket& connection, const std::string& what) {
  Json event = Json::object();
  event.set("event", "error");
  event.set("message", what);
  send_event(connection, event);
}

Json result_event(std::size_t index, bool cached, const Json& artifact) {
  Json event = Json::object();
  event.set("event", "result");
  event.set("index", static_cast<std::uint64_t>(index));
  event.set("cached", cached);
  event.set("result", artifact);
  return event;
}

Json done_event(std::uint64_t scenarios_run, std::uint64_t targets_missed,
                std::uint64_t cached) {
  Json event = Json::object();
  event.set("event", "done");
  event.set("ok", true);
  event.set("scenarios_run", scenarios_run);
  event.set("targets_missed", targets_missed);
  event.set("cached", cached);
  return event;
}

/// The wire adapter of the exec layer: every finished cell becomes one
/// streamed "result" line.  Cells finish on worker threads, hence the
/// lock; a dead peer stops the stream but never the computation — results
/// still land in the cache.
class StreamObserver : public exec::Observer {
 public:
  explicit StreamObserver(const util::TcpSocket& connection)
      : connection_(connection) {}

  void on_cell(const exec::CellEvent& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (peer_gone_) return;
    try {
      send_event(connection_,
                 result_event(event.index, event.cached,
                              event.result.to_json()));
    } catch (const std::exception&) {
      peer_gone_ = true;
    }
  }

  bool peer_gone() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return peer_gone_;
  }

 private:
  const util::TcpSocket& connection_;
  mutable std::mutex mutex_;
  bool peer_gone_ = false;
};

}  // namespace

ScenarioServer::ScenarioServer(ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_dir, options_.cache_capacity) {
  if (options_.admission_threads == 0) options_.admission_threads = 1;
  // Capacity 0 would reject every connection while handlers sit idle.
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  jobs::JobSchedulerOptions job_options;
  job_options.workers = options_.job_workers;
  job_options.threads = options_.threads;
  job_options.retain_terminal = options_.job_retain;
  job_options.stall_timeout_ms = options_.job_stall_timeout_ms;
  // Job envelopes live inside the cache directory (a sibling subdir, so
  // cache gc/verify — which scan only top-level files — never touch
  // them); without a cache dir the job queue is in-memory only.
  jobs_ = std::make_unique<jobs::JobScheduler>(
      options_.cache_dir.empty() ? std::string()
                                 : options_.cache_dir + "/jobs",
      &cache_, job_options);
}

ScenarioServer::~ScenarioServer() = default;

void ScenarioServer::start() {
  // A peer that resets mid-stream must surface as an EPIPE/ECONNRESET
  // error on the write, never as a process-killing signal.  tcp_write_all
  // already passes MSG_NOSIGNAL, but any other write path (and third-party
  // code) is only safe with the disposition set process-wide.  Idempotent.
  std::signal(SIGPIPE, SIG_IGN);
  listener_ = util::tcp_listen(options_.port);
  port_ = util::tcp_local_port(listener_);
  started_at_ = std::chrono::steady_clock::now();
  // Recover persisted jobs and start the worker pool: a daemon restarted
  // on the same cache dir resumes interrupted jobs before the first
  // connection arrives.
  jobs_->start();
}

void ScenarioServer::serve_forever() {
  std::vector<std::thread> handlers;
  handlers.reserve(options_.admission_threads);
  for (std::size_t i = 0; i < options_.admission_threads; ++i)
    handlers.emplace_back([this] { handler_loop(); });

  while (!stop_.load()) {
    util::TcpSocket connection = util::tcp_accept(listener_);
    if (!connection.valid()) break;  // listener closed by stop()/shutdown
    ++connections_;
    ServeMetrics::get().connections.inc();
    bool admitted = false;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() < options_.queue_capacity) {
        queue_.push_back(std::move(connection));
        admitted = true;
        ServeMetrics::get().queue_depth.set(
            static_cast<std::int64_t>(queue_.size()));
      }
    }
    if (admitted) {
      queue_ready_.notify_one();
      continue;
    }
    // Backpressure: a structured frame the client can tell apart from a
    // protocol error, then close.  Rejecting at admission keeps the bound
    // on waiting work exact — one slow fleet cannot wedge the daemon.
    // The client has typically already written its request line; closing
    // with it unread would turn the close into a TCP reset that discards
    // the busy frame, so drain the buffered bytes (non-blocking) first.
    ++rejected_;
    ServeMetrics::get().busy.inc();
    util::tcp_drain_pending(connection);
    Json busy = Json::object();
    busy.set("event", "error");
    busy.set("code", "busy");
    busy.set("message",
             "server queue full (" + std::to_string(options_.queue_capacity) +
                 " waiting); retry on another daemon");
    try {
      send_event(connection, busy);
    } catch (const std::exception&) {
      // Peer already gone: the rejection stands either way.
    }
    // Half-close and linger briefly for the client's EOF: a multi-segment
    // request still in flight when we close would otherwise reset the
    // connection and discard the frame.  A cooperative client closes
    // within one round trip of reading it; the per-recv deadline and the
    // total byte cap bound everyone else — this runs on the accept
    // thread, so an uncooperative peer must not stall admission.
    ::shutdown(connection.fd(), SHUT_WR);
    try {
      util::tcp_set_recv_timeout(connection, 50);
    } catch (const std::exception&) {
      continue;  // cannot bound the linger: close immediately instead
    }
    char discard[4096];
    std::size_t drained = 0;
    while (drained < 64 * 1024) {
      const ssize_t n =
          ::recv(connection.fd(), discard, sizeof(discard), 0);
      if (n <= 0) break;  // EOF, reset, or the 50 ms deadline
      drained += static_cast<std::size_t>(n);
    }
  }

  // Graceful drain: admission is already closed (the listener is down),
  // but connections that were accepted keep their handlers — wait up to
  // the grace period for the queue to empty and in-flight frames to
  // finish before severing anything.  A hard stop() skips this.
  if (draining_.load() && !stop_.load()) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.drain_grace_ms);
    for (;;) {
      bool idle;
      {
        const std::lock_guard<std::mutex> queue_lock(queue_mutex_);
        const std::lock_guard<std::mutex> active_lock(active_mutex_);
        idle = queue_.empty() && active_fds_.empty();
      }
      if (idle || stop_.load() ||
          std::chrono::steady_clock::now() >= deadline)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  // Wind down: no handler may pick up new work, queued-but-unclaimed
  // connections are closed (their clients see EOF rather than a hang),
  // blocked reads are severed so every handler observes EOF, then all of
  // them are joined.
  stop_.store(true);
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.clear();
  }
  queue_ready_.notify_all();
  {
    const std::lock_guard<std::mutex> lock(active_mutex_);
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Before joining handlers: an attach handler blocks on a job
  // subscription, not a socket read, so severing its fd alone would not
  // wake it — stopping the scheduler closes every subscription (and asks
  // running jobs to yield without marking them terminal, so a restart
  // recovers them).
  jobs_->stop();
  for (std::thread& handler : handlers) handler.join();
}

void ScenarioServer::close_listener() {
  const std::lock_guard<std::mutex> lock(listener_mutex_);
  listener_.close();
}

void ScenarioServer::drain() {
  draining_.store(true);
  // Closing the listener pops the accept loop out of tcp_accept();
  // serve_forever then runs the grace window before the hard wind-down.
  close_listener();
}

void ScenarioServer::stop() {
  stop_.store(true);
  close_listener();
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.clear();
  }
  queue_ready_.notify_all();
  {
    const std::lock_guard<std::mutex> lock(active_mutex_);
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  jobs_->stop();
}

void ScenarioServer::track_connection(int fd, bool add) {
  const std::lock_guard<std::mutex> lock(active_mutex_);
  if (add) {
    active_fds_.insert(fd);
    // stop() may have severed the registry an instant ago; a connection
    // registering after that must not outlive the wind-down.
    if (stop_.load()) ::shutdown(fd, SHUT_RDWR);
  } else {
    active_fds_.erase(fd);
  }
}

void ScenarioServer::handler_loop() {
  for (;;) {
    util::TcpSocket connection;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_ready_.wait(lock,
                        [this] { return stop_.load() || !queue_.empty(); });
      if (stop_.load()) return;  // wind-down already drained the queue
      connection = std::move(queue_.front());
      queue_.pop_front();
      ServeMetrics::get().queue_depth.set(
          static_cast<std::int64_t>(queue_.size()));
    }
    handle_connection(std::move(connection));
  }
}

void ScenarioServer::handle_connection(util::TcpSocket connection) {
  track_connection(connection.fd(), /*add=*/true);
  util::LineReader reader(connection);
  std::string line;
  try {
    while (!stop_.load() && reader.read_line(line)) {
      if (line.empty()) continue;
      try {
        handle_request(connection, line);
      } catch (const std::exception& e) {
        // Parse/validation/runtime failure of one request; the connection
        // stays usable because requests are line-framed.
        try {
          send_error(connection, e.what());
        } catch (const std::exception&) {
          break;  // peer gone mid-error: drop the connection
        }
      }
    }
  } catch (const std::exception&) {
    // A read failure — recv deadline, a reset mid-frame, an injected
    // socket fault — costs this connection only.  Letting it propagate
    // would unwind the handler thread and terminate the daemon.
  }
  track_connection(connection.fd(), /*add=*/false);
}

double ScenarioServer::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_at_)
      .count();
}

void ScenarioServer::handle_request(const util::TcpSocket& connection,
                                    const std::string& line) {
  const Json request = Json::parse(line);
  const std::string cmd = request.at("cmd").as_string();
  ++requests_;
  if (!options_.quiet)
    std::fprintf(stderr, "clktune-serve: %s\n", cmd.c_str());
  // Time the dispatch even when it throws — an error frame is still a
  // served request, and failures must not hide from the latency series.
  const std::string& verb = verb_label(cmd);
  verb_requests(verb).inc();
  const obs::ScopedTimer timer(verb_latency(verb));
  handle_command(connection, cmd, request);
}

void ScenarioServer::handle_command(const util::TcpSocket& connection,
                                    const std::string& cmd,
                                    const Json& request) {
  if (cmd == "status") {
    // With an "id" member this is a *job* status query; without one it is
    // the daemon-wide status frame (which now also carries job counters).
    if (const Json* id = request.find("id")) {
      const std::optional<jobs::JobRecord> job =
          jobs_->get(id->as_string());
      if (!job)
        throw jobs::JobError("unknown job id \"" + id->as_string() + "\"");
      send_event(connection, job->status_json());
      return;
    }
    Json event = Json::object();
    event.set("event", "status");
    event.set("version", kProtocolVersion);
    event.set("uptime_seconds", uptime_seconds());
    event.set("requests", requests_.load());
    event.set("connections", connections_.load());
    event.set("rejected", rejected_.load());
    event.set("draining", draining_.load());
    event.set("scenarios_run", scenarios_run_.load());
    event.set("cache", cache_.stats().to_json());
    event.set("jobs", jobs_->counters());
    send_event(connection, event);
    return;
  }

  if (cmd == "metrics") {
    // Job gauges are refreshed here (and only here) rather than on every
    // lifecycle transition: the scheduler already keeps exact per-state
    // counts, so sampling them at exposition time is cheaper and cannot
    // drift.
    const Json jobs = jobs_->counters();
    obs::Registry& registry = obs::Registry::global();
    static const char* kStates[] = {"queued", "preparing", "running"};
    for (const char* state : kStates) {
      const Json* count = jobs.find(state);
      registry
          .gauge("clktune_jobs_" + std::string(state),
                 "Jobs currently in this lifecycle state")
          .set(count ? static_cast<std::int64_t>(count->as_uint()) : 0);
    }
    Json event = Json::object();
    event.set("event", "metrics");
    event.set("version", kProtocolVersion);
    event.set("uptime_seconds", uptime_seconds());
    const Json* format = request.find("format");
    if (format && format->as_string() == "prometheus") {
      event.set("format", "prometheus");
      event.set("text", registry.prometheus_text());
    } else if (format && format->as_string() != "json") {
      throw std::runtime_error("metrics: unknown format \"" +
                               format->as_string() +
                               "\" (expected \"json\" or \"prometheus\")");
    } else {
      event.set("metrics", registry.snapshot_json());
    }
    send_event(connection, event);
    return;
  }

  if (cmd == "submit") {
    // Fire-and-forget admission: validate, persist, answer with the job
    // frame — O(enqueue), no cell of computation on this connection.
    if (request.contains("shard"))
      throw jobs::JobError(
          "submit jobs take an \"indices\" selection, not a shard");
    std::vector<std::size_t> indices;
    if (const Json* list = request.find("indices")) {
      indices.reserve(list->as_array().size());
      for (const Json& index : list->as_array())
        indices.push_back(static_cast<std::size_t>(index.as_uint()));
    }
    const jobs::JobRecord job =
        jobs_->submit(request.at("doc"), std::move(indices));
    send_event(connection, job.status_json());
    return;
  }

  if (cmd == "attach") {
    // Streams exactly what run/sweep would: "result" frames (replayed
    // from the cache for finished cells, live otherwise) and a terminal
    // done/error frame derived from the job's state.  No header frame —
    // clients that need metadata ask `status` first — so the stream
    // shape matches the synchronous verbs and existing clients (the
    // fleet dispatcher) consume it unchanged.
    const std::string id = request.at("id").as_string();
    bool peer_gone = false;
    const jobs::JobRecord final_state =
        jobs_->attach(id, [&](const Json& frame) {
          try {
            send_event(connection, frame);
            return true;
          } catch (const std::exception&) {
            peer_gone = true;
            return false;
          }
        });
    if (peer_gone) return;
    switch (final_state.state) {
      case jobs::JobState::done:
        send_event(connection,
                   done_event(final_state.done_indices.size(),
                              final_state.targets_missed,
                              final_state.cached));
        return;
      case jobs::JobState::error:
        send_error(connection,
                   "job " + id + " failed: " + final_state.error);
        return;
      case jobs::JobState::cancelled: {
        Json event = Json::object();
        event.set("event", "error");
        event.set("code", "cancelled");
        event.set("message", "job " + id + " was cancelled");
        send_event(connection, event);
        return;
      }
      default:
        // Only reachable when the daemon is winding down mid-stream.
        send_error(connection,
                   "daemon stopping; job " + id +
                       " will be recovered on restart — re-attach then");
        return;
    }
  }

  if (cmd == "cancel") {
    const std::string id = request.at("id").as_string();
    send_event(connection, jobs_->cancel(id).status_json());
    return;
  }

  if (cmd == "jobs") {
    Json listing = Json::array();
    for (const jobs::JobRecord& job : jobs_->list())
      listing.push_back(job.status_json());
    Json event = Json::object();
    event.set("event", "jobs");
    event.set("jobs", std::move(listing));
    send_event(connection, event);
    return;
  }

  if (cmd == "shutdown") {
    // Answer first: once stop_ is set the wind-down severs every active
    // connection, racing this send for the fd.  A peer that vanished
    // before reading the frame must not veto the shutdown itself.
    try {
      send_event(connection, done_event(0, 0, 0));
    } catch (const std::exception&) {
    }
    stop_.store(true);
    close_listener();
    return;
  }

  if (cmd == "drain") {
    // Answer first: once drain() closes the listener the accept loop is
    // already gone, and this connection finishes inside the grace window.
    Json event = Json::object();
    event.set("event", "draining");
    event.set("ok", true);
    event.set("grace_ms", static_cast<std::uint64_t>(
                              options_.drain_grace_ms < 0
                                  ? 0
                                  : options_.drain_grace_ms));
    event.set("jobs", jobs_->counters());
    send_event(connection, event);
    drain();
    return;
  }

  if (cmd == "prune") {
    std::size_t keep = 0;
    if (const Json* k = request.find("keep"))
      keep = static_cast<std::size_t>(k->as_uint());
    const std::size_t removed = jobs_->prune(keep);
    Json event = Json::object();
    event.set("event", "pruned");
    event.set("removed", static_cast<std::uint64_t>(removed));
    event.set("keep", static_cast<std::uint64_t>(keep));
    send_event(connection, event);
    return;
  }

  if (cmd == "run" || cmd == "sweep") {
    exec::Request exec_request =
        cmd == "run"
            ? exec::Request::for_scenario(
                  scenario::ScenarioSpec::from_json(request.at("doc")))
            : exec::Request::for_campaign(
                  scenario::CampaignSpec::from_json(request.at("doc")));
    exec_request.threads = options_.threads;
    exec_request.cache = &cache_;
    if (const Json* shard = request.find("shard")) {
      exec_request.shard_index =
          static_cast<std::size_t>(shard->at("index").as_uint());
      exec_request.shard_count =
          static_cast<std::size_t>(shard->at("count").as_uint());
    }
    if (const Json* indices = request.find("indices")) {
      exec_request.indices.reserve(indices->as_array().size());
      for (const Json& index : indices->as_array())
        exec_request.indices.push_back(
            static_cast<std::size_t>(index.as_uint()));
    }
    exec::LocalExecutor executor;
    StreamObserver observer(connection);
    const exec::Outcome outcome = executor.execute(exec_request, &observer);
    scenarios_run_ += outcome.scenarios_run;
    if (!observer.peer_gone())
      send_event(connection,
                 done_event(outcome.scenarios_run, outcome.targets_missed,
                            outcome.scenarios_cached));
    return;
  }

  send_error(connection, "unknown cmd \"" + cmd + "\"");
}

}  // namespace clktune::serve
